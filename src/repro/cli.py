"""Command-line interface.

::

    hmc litmus SB --model tso            # run one litmus test
    hmc litmus --all --model imm         # the whole corpus
    hmc litmus-file my.litmus --model power   # parse and run a file
    hmc bench sb --n 3 --model tso       # run a workload family
    hmc verify ticket-lock --model imm   # check assertions, show witness
    hmc compare sb --left sc --right tso # diff two models' behaviours
    hmc repair dekker --model tso        # synthesise missing fences
    hmc experiment t3                    # regenerate a table/figure
    hmc models                           # list memory models
    hmc backends                         # list exploration engines
    hmc verify SB --model-file my.cat    # model from a .cat file
    hmc litmus --all --model-file my.cat # the corpus under a .cat model
    hmc compare SB --left sc --right-file my.cat
    hmc cat-check models/*.cat           # lint .cat files
    hmc verify sb --n 3 --jobs 4         # shard over 4 worker processes
    hmc bench sb --n 3 --jobs 4          # serial-vs-parallel comparison
    hmc bench sb --backend dpor          # benchmark a baseline engine
    hmc verify SB --model tso --stats --trace-out run.jsonl --progress
                                         # instrumented run: counters,
                                         # per-phase times, JSONL trace,
                                         # stderr heartbeat
    hmc trace-summary run.jsonl          # paper-style table from a trace
    hmc verify SB --model tso --jobs 2 --spans-out spans.jsonl
                                         # span trace across coordinator
                                         # and worker processes
    hmc trace export spans.jsonl -o trace.json   # Perfetto trace JSON
    hmc trace export --job <id> --perfetto -o trace.json
                                         # trace of a server job
    hmc trace flame spans.jsonl          # terminal flamegraph
    hmc verify SB --model tso --stats --jobs 2 --save-run
                                         # profiled run, manifest stored
                                         # under .repro/runs/
    hmc runs list                        # run history
    hmc runs diff 20260807 20260808      # compare two stored runs
    hmc runs check --baseline benchmarks/baseline.json --warn-only
                                         # CI regression gate
    hmc suite run --models sc,tso,ra --jobs 4 --save-run
                                         # litmus corpus x models through
                                         # one pool, results cached
    hmc suite run --litmus SB --litmus MP --models sc --force
    hmc suite list                       # stored suite manifests
    hmc suite diff 20260807 20260808     # verdict/count drift
    hmc suite check --baseline suite.json --warn-only
    hmc serve --port 8321 --jobs 4       # long-running verification server
    hmc submit litmus SB --model tso     # run a job on that server
    hmc submit verify SB --model-file my.cat --stream
    hmc submit suite --models sc,tso --no-wait
    hmc jobs list                        # recent jobs on the server
    hmc jobs show <id>                   # one job's status
    hmc jobs cancel <id>                 # cancel a queued job
"""

from __future__ import annotations

import argparse
import os
import re
import sys

from . import __version__
from .backends import all_backends, backend_names, get_backend
from .bench import ALL_EXPERIMENTS, run_backend, serial_vs_parallel, workloads
from .bench.datastructures import DATA_STRUCTURES
from .core import ExplorationOptions, effective_jobs
from .core.compare import compare_models
from .core.repair import synthesize_fences
from .events import FenceKind
from .litmus import allowed, get_litmus, litmus_names, run_litmus
from .litmus.parser import parse_litmus
from .models import get_model, model_names
from .obs import (
    NULL_OBSERVER,
    NULL_TRACER,
    FileSink,
    Observer,
    ProgressReporter,
    SpanTracer,
    TraceWriter,
    format_summary,
    summarize_file,
)


def _find_program(family: str, n: int):
    factory = workloads.FAMILIES.get(family)
    if factory is not None:
        return factory(n)
    factory = DATA_STRUCTURES.get(family)
    if factory is not None:
        return factory(n)
    # fall back to the litmus corpus so e.g. `verify SB` works
    try:
        return get_litmus(family).program
    except KeyError:
        return None


def _unknown_family(family: str) -> str:
    known = ", ".join(sorted(list(workloads.FAMILIES) + list(DATA_STRUCTURES)))
    return (
        f"unknown family {family!r}; known: {known} "
        f"(litmus test names are accepted too)"
    )


def _wants_manifest(args) -> bool:
    """Does the invocation need a run manifest (and hence metrics)?"""
    return bool(
        getattr(args, "save_run", False)
        or getattr(args, "manifest", None)
        or getattr(args, "prom_out", None)
    )


def _observer_from_args(args) -> Observer | None:
    """Build an Observer from `--stats/--trace-out/--progress` (or any
    flag that needs a metrics registry, like `--save-run`), or None
    when none of them was given."""
    stats = getattr(args, "stats", False)
    trace_out = getattr(args, "trace_out", None)
    progress = getattr(args, "progress", None)
    spans_out = getattr(args, "spans_out", None)
    if (
        not stats
        and trace_out is None
        and progress is None
        and spans_out is None
        and not _wants_manifest(args)
    ):
        return None
    reporter = (
        ProgressReporter(every_seconds=progress) if progress is not None else None
    )
    trace = None
    if trace_out is not None:
        try:
            trace = TraceWriter(FileSink(trace_out))
        except OSError as exc:
            print(f"cannot write trace to {trace_out}: {exc}", file=sys.stderr)
            raise SystemExit(2)
    tracer = SpanTracer() if spans_out is not None else None
    return Observer(trace=trace, progress=reporter, tracer=tracer)


def _first_sentence(doc: str | None) -> str:
    """The first sentence of a docstring, whitespace-normalised."""
    if not doc:
        return ""
    text = " ".join(doc.split())
    match = re.match(r"(.*?\.)(?:\s|$)", text)
    return match.group(1) if match else text


def _load_cat_model(path: str):
    """Load a ``.cat`` model file, or print the error and return None."""
    from .cat import CatError
    from .models import load_cat

    try:
        return load_cat(path)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
    except CatError as exc:
        print(str(exc), file=sys.stderr)
    return None


def _resolve_model(args):
    """The model to check against: `--model-file` wins over `--model`.

    Returns a model name, a loaded CatModel, or None after printing
    the load error."""
    path = getattr(args, "model_file", None)
    if path is None:
        return args.model
    return _load_cat_model(path)


def _cmd_models(_args) -> int:
    for name in model_names():
        model = get_model(name)
        kind = "porf-acyclic" if model.porf_acyclic else "load-buffering"
        print(f"{name:10s} ({kind:13s}) {_first_sentence(model.__doc__)}")
    return 0


def _cmd_backends(_args) -> int:
    for backend in all_backends():
        models = (
            "any model" if backend.models is None else "/".join(backend.models)
        )
        print(f"{backend.name:14s} [{models}] {backend.description}")
    return 0


def _cmd_litmus(args) -> int:
    names = litmus_names() if args.all else [args.test]
    if not args.all and args.test is None:
        print("specify a litmus test name or --all", file=sys.stderr)
        return 2
    model = _resolve_model(args)
    if model is None:
        return 2
    overrides = {}
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.task_timeout is not None:
        overrides["task_timeout"] = args.task_timeout
    failures = 0
    for name in names:
        test = get_litmus(name)
        verdict = run_litmus(test, model, **overrides)
        try:
            expected = allowed(name, verdict.model)
        except KeyError:
            # a .cat model whose name has no literature row: report the
            # verdict without judging it
            print(f"{verdict}  [no literature expectation]")
            continue
        status = "" if verdict.observed == expected else "  [deviates from literature]"
        print(f"{verdict}{status}")
        failures += verdict.observed != expected
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    options = ExplorationOptions(
        stop_on_error=False, jobs=args.jobs, task_timeout=args.task_timeout
    )
    jobs = effective_jobs(options)
    try:
        if jobs > 1 and args.backend in ("hmc", "hmc-parallel"):
            # serial-vs-parallel comparison rows, speedup included
            rows = serial_vs_parallel(program, args.model, jobs)
            for row in rows:
                print(row.format())
        else:
            print(run_backend(
                program, args.model, backend=args.backend, options=options
            ).format())
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_verify(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    model = _resolve_model(args)
    if model is None:
        return 2
    options = ExplorationOptions(
        stop_on_error=not args.keep_going,
        jobs=args.jobs,
        task_timeout=args.task_timeout,
    )
    backend_name = args.backend
    if backend_name == "hmc" and effective_jobs(options) > 1:
        backend_name = "hmc-parallel"
    observer = _observer_from_args(args)
    tracer = observer.tracer if observer is not None else NULL_TRACER
    try:
        with tracer.span(
            f"verify:{args.family}",
            cat="run",
            model=args.model,
            backend=backend_name,
            jobs=effective_jobs(options),
        ):
            result = get_backend(backend_name).run(
                program,
                model,
                options,
                observer if observer is not None else NULL_OBSERVER,
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        if observer is not None:
            observer.close()
    print(result.summary())
    if args.stats:
        print(result.stats_summary())
        if observer is not None:
            from .obs import format_profile

            print(format_profile(observer.metrics_snapshot()))
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    spans_out = getattr(args, "spans_out", None)
    if spans_out and tracer.enabled:
        from .obs import write_spans

        try:
            count = write_spans(spans_out, tracer.snapshot())
        except OSError as exc:
            print(
                f"cannot write spans to {spans_out}: {exc}", file=sys.stderr
            )
            return 2
        print(
            f"{count} spans written to {spans_out} "
            f"(trace {tracer.trace_id}; see `hmc trace export|flame`)"
        )
    if observer is not None and _wants_manifest(args):
        _export_run(args, result, observer)
    if result.errors:
        error = result.errors[0]
        print("\nwitness:")
        print(error.witness)
        if error.graph is not None:
            from .core.witness import format_witness

            print("\nas a schedule:")
            print(format_witness(error.graph))
        return 1
    return 0


def _export_run(args, result, observer) -> None:
    """Handle `verify --save-run/--manifest/--prom-out`."""
    import json

    from .obs import RunStore, build_manifest, to_prometheus

    manifest = build_manifest(
        result,
        observer.metrics_snapshot(),
        command=" ".join(sys.argv[1:]) if sys.argv[1:] else None,
        jobs=result.meta.get("jobs", 1),
        spans=(
            observer.tracer.snapshot() if observer.tracer.enabled else None
        ),
    )
    if getattr(args, "save_run", False):
        path = RunStore(getattr(args, "runs_dir", None)).save(manifest)
        print(f"run saved to {path}")
    manifest_out = getattr(args, "manifest", None)
    if manifest_out:
        with open(manifest_out, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"manifest written to {manifest_out}")
    prom_out = getattr(args, "prom_out", None)
    if prom_out:
        with open(prom_out, "w") as handle:
            handle.write(to_prometheus(manifest))
        print(f"prometheus metrics written to {prom_out}")


def _cmd_litmus_file(args) -> int:
    try:
        with open(args.path) as handle:
            test = parse_litmus(handle.read())
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    verdict = run_litmus(test, args.model)
    print(verdict)
    if test.description:
        print(f"probe: {test.description}")
    return 0


def _cmd_compare(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    left = args.left if args.left_file is None else _load_cat_model(args.left_file)
    right_file = args.right_file or args.model_file
    right = args.right if right_file is None else _load_cat_model(right_file)
    if left is None or right is None:
        return 2
    overrides = {}
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.task_timeout is not None:
        overrides["task_timeout"] = args.task_timeout
    comparison = compare_models(program, left, right, **overrides)
    print(comparison.summary())
    if args.witness and comparison.witnesses:
        outcome, witness = next(iter(sorted(comparison.witnesses.items())))
        shown = ", ".join(f"{k}={v}" for k, v in outcome)
        print(f"\nwitness for {{{shown}}}:")
        print(witness)
    return 0


def _cmd_repair(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    fence = FenceKind(args.fence)
    result = synthesize_fences(
        program, args.model, fence=fence, max_fences=args.max_fences
    )
    print(result.summary())
    return 0 if result.placements is not None else 1


def _cmd_estimate(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    from .core.estimate import estimate_explorations

    print(estimate_explorations(program, args.model, walks=args.walks))
    return 0


def _cmd_cat_check(args) -> int:
    from .cat import lint_path

    error_count = 0
    for path in args.paths:
        try:
            diagnostics = lint_path(path)
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            error_count += 1
            continue
        for diag in diagnostics:
            print(diag.format(path))
        errors_here = sum(d.severity == "error" for d in diagnostics)
        error_count += errors_here
        if not errors_here:
            warnings = len(diagnostics) - errors_here
            suffix = f" ({warnings} warning(s))" if warnings else ""
            print(f"{path}: ok{suffix}")
    return 1 if error_count else 0


def _cmd_trace(args) -> int:
    """`hmc trace export|flame` — span-trace exporters.

    Spans come either from a JSONL file (``verify --spans-out``, or a
    dumped service event stream — ``t="span"`` records are picked out)
    or live from a server job via ``--job ID``.
    """
    import json

    from .obs import format_flame, read_spans, to_perfetto

    if bool(getattr(args, "job", None)) == bool(args.path):
        print(
            "give exactly one span source: a PATH or --job ID",
            file=sys.stderr,
        )
        return 2
    trace_id = None
    if getattr(args, "job", None):
        from .service import ServiceClient, ServiceError

        try:
            doc = ServiceClient(args.url).spans(args.job)
        except ServiceError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        spans = doc.get("spans", [])
        trace_id = doc.get("trace_id")
        if doc.get("state") not in ("done", "failed"):
            print(
                f"note: job {args.job} is {doc.get('state')}; "
                "the span tree is still partial",
                file=sys.stderr,
            )
    else:
        try:
            spans = read_spans(args.path)
        except OSError as exc:
            print(f"cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"malformed span file: {exc}", file=sys.stderr)
            return 2
    if not spans:
        print("no spans in the source", file=sys.stderr)
        return 1
    if args.trace_command == "flame":
        print(format_flame(spans, width=args.width, min_frac=args.min_frac))
        return 0
    doc = to_perfetto(spans, trace_id=trace_id)
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"cannot write {args.out}: {exc}", file=sys.stderr)
            return 2
        print(
            f"{len(doc['traceEvents'])} events written to {args.out} "
            "(load in https://ui.perfetto.dev or chrome://tracing)",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


def _cmd_trace_summary(args) -> int:
    try:
        summary = summarize_file(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(summary.as_dict(), indent=2))
    else:
        print(format_summary(summary))
    return 0


def _cmd_runs(args) -> int:
    """`hmc runs list|show|diff|check` — the run-history tooling."""
    import json

    from .obs import (
        RUN_MANIFEST_KIND,
        RunStore,
        check_manifest,
        diff_manifests,
        format_check,
        format_diff,
    )

    # suite manifests live in the same store; `hmc suite` lists those
    store = RunStore(args.dir, kind=RUN_MANIFEST_KIND)

    def load(ref: str) -> dict | None:
        try:
            return store.load(ref)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return None

    if args.runs_command == "list":
        manifests = []
        try:
            manifests = store.list_runs()
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(manifests, indent=2))
            return 0
        if not manifests:
            print(f"no runs stored in {store.root}")
            return 0
        for m in manifests:
            r = m.get("result", {})
            print(
                f"{m.get('run_id')}  {m.get('program')}/{m.get('model')}  "
                f"executions={r.get('executions')} blocked={r.get('blocked')} "
                f"errors={r.get('errors')} elapsed={r.get('elapsed'):.4f}s "
                f"jobs={m.get('jobs')}"
            )
        return 0

    if args.runs_command == "show":
        manifest = load(args.run) if args.run != "latest" else store.latest()
        if manifest is None:
            if args.run == "latest":
                print(f"no runs stored in {store.root}", file=sys.stderr)
            return 2
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    if args.runs_command == "diff":
        old, new = load(args.old), load(args.new)
        if old is None or new is None:
            return 2
        diff = diff_manifests(old, new)
        if args.json:
            print(json.dumps(diff, indent=2))
        else:
            print(format_diff(diff))
        return 0

    # check
    baseline = load(args.baseline)
    if baseline is None:
        return 2
    if args.run is not None:
        current = load(args.run)
    else:
        current = store.latest()
        if current is None:
            print(
                f"no runs stored in {store.root} (run "
                "`verify ... --save-run` first, or pass a manifest path)",
                file=sys.stderr,
            )
            return 2
    if current is None:
        return 2
    violations, warnings = check_manifest(
        current, baseline, max_ratio=args.max_ratio
    )
    print(format_check(violations, warnings, warn_only=args.warn_only))
    if violations and not args.warn_only:
        return 1
    return 0


def _cmd_suite(args) -> int:
    """`hmc suite run|list|diff|check` — batched suite execution."""
    import json

    from .obs import SUITE_MANIFEST_KIND, RunStore, format_check
    from .suite import (
        build_suite_manifest,
        check_suite,
        diff_suites,
        format_suite_diff,
        litmus_matrix,
        run_suite,
    )

    store = RunStore(
        getattr(args, "dir", None) or getattr(args, "runs_dir", None),
        kind=SUITE_MANIFEST_KIND,
    )

    def load(ref: str) -> dict | None:
        try:
            return store.load(ref)
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return None

    if args.suite_command == "run":
        models: list = [
            m.strip() for m in args.models.split(",") if m.strip()
        ]
        if args.model_file:
            cat = _load_cat_model(args.model_file)
            if cat is None:
                return 2
            models.append(cat)
        if not models:
            print("no models selected", file=sys.stderr)
            return 2
        tests = args.litmus if args.litmus else None
        try:
            tasks = litmus_matrix(tests, models=models)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        cache = False if args.no_cache else args.cache_dir
        observer = _observer_from_args(args)
        try:
            suite = run_suite(
                tasks,
                jobs=args.jobs,
                cache=cache,
                force=args.force,
                rerun_failed=args.rerun_failed,
                task_timeout=args.task_timeout,
                observer=observer if observer is not None else NULL_OBSERVER,
            )
        finally:
            if observer is not None:
                observer.close()
        manifest = build_suite_manifest(
            suite, command=" ".join(sys.argv[1:]) if sys.argv[1:] else None
        )
        if args.json:
            print(json.dumps(manifest, indent=2, sort_keys=True))
        else:
            print(suite.summary())
        if args.stats and observer is not None:
            from .obs import format_profile

            print(format_profile(observer.metrics_snapshot()))
        if args.save_run:
            path = RunStore(args.runs_dir).save(manifest)
            print(f"suite saved to {path}")
        if args.manifest:
            with open(args.manifest, "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"manifest written to {args.manifest}")
        return 1 if suite.deviations else 0

    if args.suite_command == "list":
        try:
            manifests = store.list_runs()
        except (OSError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(manifests, indent=2))
            return 0
        if not manifests:
            print(f"no suites stored in {store.root}")
            return 0
        for m in manifests:
            totals = m.get("totals", {})
            print(
                f"{m.get('run_id')}  tasks={totals.get('tasks')} "
                f"cached={totals.get('cache_hits')} "
                f"errors={totals.get('errors')} "
                f"deviations={totals.get('deviations')} "
                f"elapsed={m.get('elapsed'):.3f}s jobs={m.get('jobs')}"
            )
        return 0

    if args.suite_command == "diff":
        old, new = load(args.old), load(args.new)
        if old is None or new is None:
            return 2
        diff = diff_suites(old, new)
        if args.json:
            print(json.dumps(diff, indent=2))
        else:
            print(format_suite_diff(diff))
        return 0

    # check
    baseline = load(args.baseline)
    if baseline is None:
        return 2
    if args.run is not None:
        current = load(args.run)
    else:
        current = store.latest()
        if current is None:
            print(
                f"no suites stored in {store.root} (run "
                "`suite run ... --save-run` first, or pass a manifest "
                "path)",
                file=sys.stderr,
            )
            return 2
    if current is None:
        return 2
    violations, warnings = check_suite(
        current, baseline, max_ratio=args.max_ratio
    )
    print(format_check(violations, warnings, warn_only=args.warn_only))
    if violations and not args.warn_only:
        return 1
    return 0


def _cmd_serve(args) -> int:
    """`hmc serve` — run the verification server until SIGTERM."""
    from .service import serve

    return serve(
        args.host,
        args.port,
        jobs=args.jobs,
        queue_size=args.queue_size,
        cache=False if args.no_cache else args.cache_dir,
        task_timeout=args.task_timeout,
        runs_dir=args.runs_dir,
        save_runs=args.save_runs,
        port_file=args.port_file,
        quiet=args.quiet,
    )


def _submit_model_spec(args):
    """`--model`/`--model-file` into the wire model spec."""
    import os

    path = getattr(args, "model_file", None)
    if path is None:
        return args.model
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return None
    name = os.path.splitext(os.path.basename(path))[0]
    return {"cat": source, "name": name}


def _submit_payload(args):
    """Build the submit payload for `hmc submit`, or None on error."""
    payload: dict = {"kind": args.submit_command, "priority": args.priority}
    if args.task_timeout is not None:
        payload["task_timeout"] = args.task_timeout
    if args.submit_command == "verify":
        if args.family in workloads.FAMILIES or args.family in DATA_STRUCTURES:
            payload["program"] = {"family": args.family, "n": args.n}
        else:
            payload["program"] = {"litmus": args.family}
        model = _submit_model_spec(args)
        if model is None:
            return None
        payload["model"] = model
    elif args.submit_command == "litmus":
        payload["test"] = args.test
        model = _submit_model_spec(args)
        if model is None:
            return None
        payload["model"] = model
    else:  # suite
        models: list = [
            m.strip() for m in args.models.split(",") if m.strip()
        ]
        if args.model_file:
            spec = _submit_model_spec(args)
            if spec is None:
                return None
            models.append(spec)
        if not models:
            print("no models selected", file=sys.stderr)
            return None
        payload["models"] = models
        payload["tests"] = args.litmus if args.litmus else None
    return payload


def _print_submit_result(args, result) -> int:
    import json

    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if result["kind"] == "suite":
        totals = result["manifest"]["totals"]
        print(
            f"suite done: tasks={totals['tasks']} "
            f"cached={totals['cache_hits']} errors={totals['errors']} "
            f"deviations={totals['deviations']} "
            f"elapsed={result['elapsed']:.3f}s"
        )
        return 1 if totals["deviations"] else 0
    verdict = result.get("verdict")
    if verdict is not None:
        note = " (cached)" if result.get("cached") else ""
        print(
            f"{verdict['test']} under {verdict['model']}: "
            f"{'observed' if verdict['observed'] else 'not observed'} "
            f"in {verdict['executions']} executions{note}"
        )
        expected = result.get("expected")
        if expected is not None and expected != verdict["observed"]:
            print("  [deviates from literature]")
            return 1
        return 0
    res = result["result"]
    errors = len(res.get("errors", []))
    print(
        f"executions={res['executions']} blocked={res['blocked']} "
        f"errors={errors} elapsed={result['elapsed']:.3f}s"
        f"{' (cached)' if result.get('cached') else ''}"
    )
    return 1 if errors else 0


def _cmd_submit(args) -> int:
    """`hmc submit verify|litmus|suite` — run a job on a server."""
    from .service import ServiceClient, ServiceError

    payload = _submit_payload(args)
    if payload is None:
        return 2
    client = ServiceClient(args.url)
    try:
        job = client.submit(payload)
    except ServiceError as exc:
        hint = (
            f" (retry after {exc.retry_after:.0f}s)"
            if exc.retry_after is not None
            else ""
        )
        print(f"submit failed: {exc}{hint}", file=sys.stderr)
        return 2
    print(f"job {job['id']} {job['state']} ({job['label']})", file=sys.stderr)
    if args.no_wait:
        print(job["id"])
        return 0
    on_event = None
    if args.stream:
        def on_event(event):
            import json

            print(json.dumps(event, sort_keys=True), file=sys.stderr)
    try:
        result = client.wait(
            job["id"], timeout=args.wait_timeout, on_event=on_event
        )
    except ServiceError as exc:
        print(f"job {job['id']}: {exc}", file=sys.stderr)
        return 1
    return _print_submit_result(args, result)


def _cmd_jobs(args) -> int:
    """`hmc jobs list|show|cancel` — inspect jobs on a server."""
    import json

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.jobs_command == "list":
            jobs = client.list_jobs(limit=args.limit)
            if args.json:
                print(json.dumps(jobs, indent=2, sort_keys=True))
                return 0
            if not jobs:
                print(f"no jobs on {client.url}")
                return 0
            for job in jobs:
                print(
                    f"{job['id']}  {job['state']:9s} {job['kind']:7s} "
                    f"{job['label']}"
                )
            return 0
        if args.jobs_command == "show":
            print(json.dumps(client.status(args.id), indent=2, sort_keys=True))
            return 0
        # cancel
        status = client.cancel(args.id)
        print(f"{status['id']}: {status['reason']}")
        return 0 if status.get("cancelled") else 1
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1 if exc.status == 409 else 2


def _cmd_experiment(args) -> int:
    fn = ALL_EXPERIMENTS.get(args.name)
    if fn is None:
        known = ", ".join(sorted(ALL_EXPERIMENTS))
        print(f"unknown experiment {args.name!r}; known: {known}", file=sys.stderr)
        return 2
    fn()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hmc",
        description="Stateless model checking for hardware memory models "
        "(ASPLOS 2020 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s (repro) {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the supported memory models")
    sub.add_parser("backends", help="list the registered exploration backends")

    jobs_help = (
        "worker processes to shard exploration over "
        "(0 = one per CPU; default: serial, or $REPRO_JOBS)"
    )
    task_timeout_help = (
        "wall-clock seconds before a parallel subtree task is declared "
        "hung and retried (default: no timeout; see docs/PARALLEL.md)"
    )

    model_file_help = (
        "load the model from a declarative .cat file instead of --model "
        "(see docs/CAT.md)"
    )

    litmus = sub.add_parser("litmus", help="run litmus tests")
    litmus.add_argument("test", nargs="?", help="litmus test name (see repro.litmus)")
    litmus.add_argument("--all", action="store_true", help="run the whole corpus")
    litmus.add_argument("--model", default="sc", choices=model_names())
    litmus.add_argument("--model-file", metavar="PATH", help=model_file_help)
    litmus.add_argument("--jobs", type=int, default=None, help=jobs_help)
    litmus.add_argument(
        "--task-timeout", type=float, default=None, help=task_timeout_help
    )

    bench = sub.add_parser("bench", help="run one benchmark workload")
    bench.add_argument("family", help="workload family (e.g. sb, ainc, ticket-lock)")
    bench.add_argument("--n", type=int, default=2, help="workload size")
    bench.add_argument("--model", default="sc", choices=model_names())
    bench.add_argument("--jobs", type=int, default=None, help=jobs_help)
    bench.add_argument(
        "--task-timeout", type=float, default=None, help=task_timeout_help
    )
    bench.add_argument(
        "--backend",
        default="hmc",
        choices=backend_names(),
        help="exploration engine to benchmark (see `hmc backends`)",
    )

    verify_p = sub.add_parser("verify", help="verify a workload (stop at first error)")
    verify_p.add_argument("family", help="workload family or litmus test name")
    verify_p.add_argument("--n", type=int, default=2)
    verify_p.add_argument("--model", default="sc", choices=model_names())
    verify_p.add_argument("--model-file", metavar="PATH", help=model_file_help)
    verify_p.add_argument("--jobs", type=int, default=None, help=jobs_help)
    verify_p.add_argument(
        "--task-timeout", type=float, default=None, help=task_timeout_help
    )
    verify_p.add_argument(
        "--backend",
        default="hmc",
        choices=backend_names(),
        help="exploration engine (hmc auto-upgrades to hmc-parallel "
        "when --jobs > 1)",
    )
    verify_p.add_argument(
        "--keep-going", action="store_true", help="collect all errors"
    )
    verify_p.add_argument(
        "--stats",
        action="store_true",
        help="print exploration counters and the per-phase time breakdown",
    )
    verify_p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a JSONL exploration trace (see `hmc trace-summary`)",
    )
    verify_p.add_argument(
        "--spans-out",
        metavar="PATH",
        help="record a span trace (JSONL) across coordinator and worker "
        "processes, for `hmc trace export|flame`",
    )
    verify_p.add_argument(
        "--progress",
        type=float,
        nargs="?",
        const=2.0,
        metavar="SECONDS",
        help="print a heartbeat to stderr every SECONDS (default 2; "
        "set $REPRO_PROGRESS_EVERY for a global cadence)",
    )
    verify_p.add_argument(
        "--save-run",
        action="store_true",
        help="save a run manifest into the run store "
        "(see `hmc runs`, docs/OBSERVABILITY.md)",
    )
    verify_p.add_argument(
        "--runs-dir",
        metavar="DIR",
        default=None,
        help="run store directory for --save-run "
        "(default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    verify_p.add_argument(
        "--manifest",
        metavar="PATH",
        help="also write the run manifest JSON to PATH",
    )
    verify_p.add_argument(
        "--prom-out",
        metavar="PATH",
        help="write run metrics in Prometheus text format to PATH",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure from DESIGN.md"
    )
    experiment.add_argument("name", help="experiment id (t1..t5, f1..f3, a1, a2)")

    litmus_file = sub.add_parser("litmus-file", help="parse and run a litmus file")
    litmus_file.add_argument("path")
    litmus_file.add_argument("--model", default="sc", choices=model_names())

    compare = sub.add_parser("compare", help="diff a workload under two models")
    compare.add_argument("family")
    compare.add_argument("--n", type=int, default=2)
    compare.add_argument("--left", default="sc", choices=model_names())
    compare.add_argument("--right", default="tso", choices=model_names())
    compare.add_argument(
        "--left-file", metavar="PATH", help="left model from a .cat file"
    )
    compare.add_argument(
        "--right-file", metavar="PATH", help="right model from a .cat file"
    )
    compare.add_argument(
        "--model-file",
        metavar="PATH",
        help="alias for --right-file (matches verify/litmus)",
    )
    compare.add_argument("--jobs", type=int, default=None, help=jobs_help)
    compare.add_argument(
        "--task-timeout", type=float, default=None, help=task_timeout_help
    )
    compare.add_argument("--witness", action="store_true")

    repair = sub.add_parser("repair", help="synthesise fences to fix a workload")
    repair.add_argument("family")
    repair.add_argument("--n", type=int, default=2)
    repair.add_argument("--model", default="tso", choices=model_names())
    repair.add_argument(
        "--fence",
        default="mfence",
        choices=[k.value for k in FenceKind if k is not FenceKind.C11],
    )
    repair.add_argument("--max-fences", type=int, default=3)

    estimate = sub.add_parser(
        "estimate", help="estimate exploration size by random descents"
    )
    estimate.add_argument("family")
    estimate.add_argument("--n", type=int, default=2)
    estimate.add_argument("--model", default="sc", choices=model_names())
    estimate.add_argument("--walks", type=int, default=50)

    cat_check = sub.add_parser(
        "cat-check", help="lint declarative .cat model files"
    )
    cat_check.add_argument(
        "paths", nargs="+", metavar="FILE", help=".cat files to lint"
    )

    trace_p = sub.add_parser(
        "trace",
        help="export and visualise span traces (see docs/OBSERVABILITY.md)",
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    trace_export = trace_sub.add_parser(
        "export",
        help="convert spans to Chrome/Perfetto trace-event JSON",
    )
    trace_flame = trace_sub.add_parser(
        "flame", help="render spans as a terminal flamegraph"
    )
    for trace_cmd in (trace_export, trace_flame):
        trace_cmd.add_argument(
            "path",
            nargs="?",
            help="span JSONL (from `verify --spans-out` or a dumped "
            "service event stream)",
        )
        trace_cmd.add_argument(
            "--job",
            metavar="ID",
            help="fetch spans from a verification-service job instead "
            "of a file",
        )
        trace_cmd.add_argument(
            "--url",
            default=None,
            help="service URL for --job (default: $REPRO_SERVICE_URL "
            "or http://127.0.0.1:8321)",
        )
    trace_export.add_argument(
        "--perfetto",
        action="store_true",
        help="emit Chrome/Perfetto trace-event JSON (the default and "
        "currently only format)",
    )
    trace_export.add_argument(
        "-o",
        "--out",
        metavar="PATH",
        default=None,
        help="write the document to PATH (default: stdout)",
    )
    trace_flame.add_argument(
        "--width", type=int, default=30, help="bar width in characters"
    )
    trace_flame.add_argument(
        "--min-frac",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="hide subtrees below this fraction of total time",
    )

    trace_summary = sub.add_parser(
        "trace-summary",
        help="aggregate a JSONL exploration trace into the paper-style table",
    )
    trace_summary.add_argument("path", help="trace file written by --trace-out")
    trace_summary.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    suite = sub.add_parser(
        "suite",
        help="run task batches through one shared pool (see docs/PARALLEL.md)",
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    suite_run = suite_sub.add_parser(
        "run", help="run a litmus-by-model matrix as one batched suite"
    )
    suite_run.add_argument(
        "--litmus",
        action="append",
        metavar="TEST",
        help="litmus test to include (repeatable; default: whole corpus)",
    )
    suite_run.add_argument(
        "--models",
        default="sc,tso,ra",
        metavar="M1,M2,...",
        help="comma-separated model names (default: sc,tso,ra)",
    )
    suite_run.add_argument(
        "--model-file",
        metavar="PATH",
        help="also include the model from a declarative .cat file",
    )
    suite_run.add_argument("--jobs", type=int, default=None, help=jobs_help)
    suite_run.add_argument(
        "--task-timeout", type=float, default=None, help=task_timeout_help
    )
    suite_run.add_argument(
        "--force",
        action="store_true",
        help="recompute every task, ignoring the result cache",
    )
    suite_run.add_argument(
        "--rerun-failed",
        action="store_true",
        help="recompute only tasks whose cached result has errors "
        "or was truncated",
    )
    suite_run.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache entirely",
    )
    suite_run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory "
        "(default: $REPRO_SUITE_CACHE_DIR or .repro/suite-cache)",
    )
    suite_run.add_argument(
        "--save-run",
        action="store_true",
        help="save the suite manifest into the run store (see `hmc suite list`)",
    )
    suite_run.add_argument(
        "--runs-dir",
        metavar="DIR",
        default=None,
        help="run store directory for --save-run "
        "(default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    suite_run.add_argument(
        "--manifest",
        metavar="PATH",
        help="also write the suite manifest JSON to PATH",
    )
    suite_run.add_argument(
        "--json", action="store_true", help="emit the manifest instead of the table"
    )
    suite_run.add_argument(
        "--stats",
        action="store_true",
        help="print the merged per-phase profile after the table",
    )

    suite_list = suite_sub.add_parser("list", help="list stored suite manifests")
    suite_list.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help="run store directory (default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    suite_list.add_argument(
        "--json", action="store_true", help="emit the full manifests as JSON"
    )

    suite_diff = suite_sub.add_parser("diff", help="compare two stored suites")
    suite_diff.add_argument(
        "--dir", metavar="DIR", default=None, help="run store directory"
    )
    suite_diff.add_argument("old", help="baseline suite id/prefix/path")
    suite_diff.add_argument("new", help="current suite id/prefix/path")
    suite_diff.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )

    suite_check = suite_sub.add_parser(
        "check", help="gate a suite against a baseline manifest (CI)"
    )
    suite_check.add_argument(
        "--dir", metavar="DIR", default=None, help="run store directory"
    )
    suite_check.add_argument(
        "run",
        nargs="?",
        default=None,
        help="suite to check (default: latest stored suite)",
    )
    suite_check.add_argument(
        "--baseline",
        required=True,
        metavar="PATH",
        help="baseline suite manifest (run id/prefix or path)",
    )
    suite_check.add_argument(
        "--max-ratio",
        type=float,
        default=1.5,
        metavar="R",
        help="timing regression threshold (default 1.5x)",
    )
    suite_check.add_argument(
        "--warn-only",
        action="store_true",
        help="report violations but exit 0 (CI soft gate)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the HTTP verification server (see docs/SERVICE.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 = ephemeral; default 8321)",
    )
    serve_p.add_argument("--jobs", type=int, default=None, help=jobs_help)
    serve_p.add_argument(
        "--queue-size",
        type=int,
        default=64,
        metavar="N",
        help="queued jobs before submissions get 429 (default 64)",
    )
    serve_p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache",
    )
    serve_p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory "
        "(default: $REPRO_SUITE_CACHE_DIR or .repro/suite-cache)",
    )
    serve_p.add_argument(
        "--task-timeout", type=float, default=None, help=task_timeout_help
    )
    serve_p.add_argument(
        "--save-runs",
        action="store_true",
        help="store a suite manifest per completed job (see `hmc suite list`)",
    )
    serve_p.add_argument(
        "--runs-dir",
        metavar="DIR",
        default=None,
        help="run store directory for --save-runs",
    )
    serve_p.add_argument(
        "--port-file",
        metavar="PATH",
        help="write the bound port to PATH once listening "
        "(for scripts using --port 0)",
    )
    serve_p.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )

    url_help = (
        "service URL (default: $REPRO_SERVICE_URL or http://127.0.0.1:8321)"
    )

    submit = sub.add_parser(
        "submit", help="submit a job to a running `hmc serve` server"
    )
    submit_sub = submit.add_subparsers(dest="submit_command", required=True)

    def submit_common(p):
        p.add_argument("--url", default=None, help=url_help)
        p.add_argument(
            "--priority",
            default="normal",
            choices=["high", "normal", "low"],
            help="queue priority (default normal)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            help="per-job hang-recovery timeout in seconds",
        )
        p.add_argument(
            "--no-wait",
            action="store_true",
            help="print the job id and return without waiting",
        )
        p.add_argument(
            "--wait-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="give up waiting after SECONDS (default: wait forever)",
        )
        p.add_argument(
            "--stream",
            action="store_true",
            help="print progress events (NDJSON) to stderr while waiting",
        )
        p.add_argument(
            "--json", action="store_true", help="print the raw result JSON"
        )

    submit_verify = submit_sub.add_parser(
        "verify", help="verify a workload family or litmus program"
    )
    submit_verify.add_argument(
        "family", help="workload family or litmus test name"
    )
    submit_verify.add_argument("--n", type=int, default=2)
    submit_verify.add_argument("--model", default="sc")
    submit_verify.add_argument(
        "--model-file", metavar="PATH", help=model_file_help
    )
    submit_common(submit_verify)

    submit_litmus = submit_sub.add_parser(
        "litmus", help="run one litmus test for a verdict"
    )
    submit_litmus.add_argument("test", help="litmus test name")
    submit_litmus.add_argument("--model", default="sc")
    submit_litmus.add_argument(
        "--model-file", metavar="PATH", help=model_file_help
    )
    submit_common(submit_litmus)

    submit_suite = submit_sub.add_parser(
        "suite", help="run a litmus-by-model matrix"
    )
    submit_suite.add_argument(
        "--litmus",
        action="append",
        metavar="TEST",
        help="litmus test to include (repeatable; default: whole corpus)",
    )
    submit_suite.add_argument(
        "--models",
        default="sc,tso,ra",
        metavar="M1,M2,...",
        help="comma-separated model names (default: sc,tso,ra)",
    )
    submit_suite.add_argument(
        "--model-file",
        metavar="PATH",
        help="also include the model from a declarative .cat file",
    )
    submit_common(submit_suite)

    jobs_p = sub.add_parser(
        "jobs", help="inspect jobs on a running verification server"
    )
    jobs_sub = jobs_p.add_subparsers(dest="jobs_command", required=True)

    jobs_list = jobs_sub.add_parser("list", help="recent jobs, newest first")
    jobs_list.add_argument("--url", default=None, help=url_help)
    jobs_list.add_argument("--limit", type=int, default=100)
    jobs_list.add_argument(
        "--json", action="store_true", help="emit the status documents"
    )

    jobs_show = jobs_sub.add_parser("show", help="one job's status document")
    jobs_show.add_argument("id", help="job id")
    jobs_show.add_argument("--url", default=None, help=url_help)

    jobs_cancel = jobs_sub.add_parser("cancel", help="cancel a queued job")
    jobs_cancel.add_argument("id", help="job id")
    jobs_cancel.add_argument("--url", default=None, help=url_help)

    runs = sub.add_parser(
        "runs",
        help="inspect and compare stored run manifests (see --save-run)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def runs_dir_arg(p):
        p.add_argument(
            "--dir",
            metavar="DIR",
            default=None,
            help="run store directory "
            "(default: $REPRO_RUNS_DIR or .repro/runs)",
        )

    runs_list = runs_sub.add_parser("list", help="list stored runs")
    runs_dir_arg(runs_list)
    runs_list.add_argument(
        "--json", action="store_true", help="emit the full manifests as JSON"
    )

    runs_show = runs_sub.add_parser("show", help="print one run manifest")
    runs_dir_arg(runs_show)
    runs_show.add_argument(
        "run",
        nargs="?",
        default="latest",
        help="run id, unambiguous prefix, manifest path, or 'latest'",
    )

    runs_diff = runs_sub.add_parser("diff", help="compare two runs")
    runs_dir_arg(runs_diff)
    runs_diff.add_argument("old", help="baseline run id/prefix/path")
    runs_diff.add_argument("new", help="current run id/prefix/path")
    runs_diff.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )

    runs_check = runs_sub.add_parser(
        "check", help="gate a run against a baseline manifest (CI)"
    )
    runs_dir_arg(runs_check)
    runs_check.add_argument(
        "run",
        nargs="?",
        default=None,
        help="run to check (default: latest stored run)",
    )
    runs_check.add_argument(
        "--baseline",
        required=True,
        metavar="PATH",
        help="baseline manifest (run id/prefix or path)",
    )
    runs_check.add_argument(
        "--max-ratio",
        type=float,
        default=1.5,
        metavar="R",
        help="timing regression threshold (default 1.5x)",
    )
    runs_check.add_argument(
        "--warn-only",
        action="store_true",
        help="report violations but exit 0 (CI soft gate)",
    )

    return parser


_COMMANDS = {
    "models": _cmd_models,
    "backends": _cmd_backends,
    "litmus": _cmd_litmus,
    "litmus-file": _cmd_litmus_file,
    "bench": _cmd_bench,
    "verify": _cmd_verify,
    "compare": _cmd_compare,
    "repair": _cmd_repair,
    "estimate": _cmd_estimate,
    "experiment": _cmd_experiment,
    "cat-check": _cmd_cat_check,
    "trace": _cmd_trace,
    "trace-summary": _cmd_trace_summary,
    "runs": _cmd_runs,
    "suite": _cmd_suite,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # terminate any partial progress/heartbeat line cleanly, then
        # report the conventional 128+SIGINT exit status
        sys.stderr.write("\ninterrupted\n")
        sys.stderr.flush()
        return 130
    except BrokenPipeError:
        # downstream consumer (| head, | less) closed the pipe; point
        # stdout at devnull so interpreter shutdown doesn't re-raise
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
