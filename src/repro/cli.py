"""Command-line interface.

::

    hmc litmus SB --model tso            # run one litmus test
    hmc litmus --all --model imm         # the whole corpus
    hmc litmus-file my.litmus --model power   # parse and run a file
    hmc bench sb --n 3 --model tso       # run a workload family
    hmc verify ticket-lock --model imm   # check assertions, show witness
    hmc compare sb --left sc --right tso # diff two models' behaviours
    hmc repair dekker --model tso        # synthesise missing fences
    hmc experiment t3                    # regenerate a table/figure
    hmc models                           # list memory models
"""

from __future__ import annotations

import argparse
import sys

from .bench import ALL_EXPERIMENTS, run_hmc, workloads
from .bench.datastructures import DATA_STRUCTURES
from .core import ExplorationOptions, Explorer
from .core.compare import compare_models
from .core.repair import synthesize_fences
from .events import FenceKind
from .litmus import allowed, get_litmus, litmus_names, run_litmus
from .litmus.parser import parse_litmus
from .models import get_model, model_names


def _find_program(family: str, n: int):
    factory = workloads.FAMILIES.get(family)
    if factory is not None:
        return factory(n)
    factory = DATA_STRUCTURES.get(family)
    if factory is not None:
        return factory(n)
    return None


def _unknown_family(family: str) -> str:
    known = ", ".join(sorted(list(workloads.FAMILIES) + list(DATA_STRUCTURES)))
    return f"unknown family {family!r}; known: {known}"


def _cmd_models(_args) -> int:
    for name in model_names():
        model = get_model(name)
        kind = "porf-acyclic" if model.porf_acyclic else "load-buffering"
        print(f"{name:10s} ({kind})")
    return 0


def _cmd_litmus(args) -> int:
    names = litmus_names() if args.all else [args.test]
    if not args.all and args.test is None:
        print("specify a litmus test name or --all", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        test = get_litmus(name)
        verdict = run_litmus(test, args.model)
        expected = allowed(name, args.model)
        status = "" if verdict.observed == expected else "  [deviates from literature]"
        print(f"{verdict}{status}")
        failures += verdict.observed != expected
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    row = run_hmc(program, args.model)
    print(row.format())
    return 0


def _cmd_verify(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    options = ExplorationOptions(stop_on_error=not args.keep_going)
    result = Explorer(program, get_model(args.model), options).run()
    print(result.summary())
    if result.errors:
        error = result.errors[0]
        print("\nwitness:")
        print(error.witness)
        if error.graph is not None:
            from .core.witness import format_witness

            print("\nas a schedule:")
            print(format_witness(error.graph))
        return 1
    return 0


def _cmd_litmus_file(args) -> int:
    try:
        with open(args.path) as handle:
            test = parse_litmus(handle.read())
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    verdict = run_litmus(test, args.model)
    print(verdict)
    if test.description:
        print(f"probe: {test.description}")
    return 0


def _cmd_compare(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    comparison = compare_models(program, args.left, args.right)
    print(comparison.summary())
    if args.witness and comparison.witnesses:
        outcome, witness = next(iter(sorted(comparison.witnesses.items())))
        shown = ", ".join(f"{k}={v}" for k, v in outcome)
        print(f"\nwitness for {{{shown}}}:")
        print(witness)
    return 0


def _cmd_repair(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    fence = FenceKind(args.fence)
    result = synthesize_fences(
        program, args.model, fence, max_fences=args.max_fences
    )
    print(result.summary())
    return 0 if result.placements is not None else 1


def _cmd_estimate(args) -> int:
    program = _find_program(args.family, args.n)
    if program is None:
        print(_unknown_family(args.family), file=sys.stderr)
        return 2
    from .core.estimate import estimate_explorations

    print(estimate_explorations(program, args.model, walks=args.walks))
    return 0


def _cmd_experiment(args) -> int:
    fn = ALL_EXPERIMENTS.get(args.name)
    if fn is None:
        known = ", ".join(sorted(ALL_EXPERIMENTS))
        print(f"unknown experiment {args.name!r}; known: {known}", file=sys.stderr)
        return 2
    fn()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hmc",
        description="Stateless model checking for hardware memory models "
        "(ASPLOS 2020 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the supported memory models")

    litmus = sub.add_parser("litmus", help="run litmus tests")
    litmus.add_argument("test", nargs="?", help="litmus test name (see repro.litmus)")
    litmus.add_argument("--all", action="store_true", help="run the whole corpus")
    litmus.add_argument("--model", default="sc", choices=model_names())

    bench = sub.add_parser("bench", help="run one benchmark workload")
    bench.add_argument("family", help="workload family (e.g. sb, ainc, ticket-lock)")
    bench.add_argument("--n", type=int, default=2, help="workload size")
    bench.add_argument("--model", default="sc", choices=model_names())

    verify_p = sub.add_parser("verify", help="verify a workload (stop at first error)")
    verify_p.add_argument("family")
    verify_p.add_argument("--n", type=int, default=2)
    verify_p.add_argument("--model", default="sc", choices=model_names())
    verify_p.add_argument(
        "--keep-going", action="store_true", help="collect all errors"
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure from DESIGN.md"
    )
    experiment.add_argument("name", help="experiment id (t1..t5, f1..f3, a1, a2)")

    litmus_file = sub.add_parser("litmus-file", help="parse and run a litmus file")
    litmus_file.add_argument("path")
    litmus_file.add_argument("--model", default="sc", choices=model_names())

    compare = sub.add_parser("compare", help="diff a workload under two models")
    compare.add_argument("family")
    compare.add_argument("--n", type=int, default=2)
    compare.add_argument("--left", default="sc", choices=model_names())
    compare.add_argument("--right", default="tso", choices=model_names())
    compare.add_argument("--witness", action="store_true")

    repair = sub.add_parser("repair", help="synthesise fences to fix a workload")
    repair.add_argument("family")
    repair.add_argument("--n", type=int, default=2)
    repair.add_argument("--model", default="tso", choices=model_names())
    repair.add_argument(
        "--fence",
        default="mfence",
        choices=[k.value for k in FenceKind if k is not FenceKind.C11],
    )
    repair.add_argument("--max-fences", type=int, default=3)

    estimate = sub.add_parser(
        "estimate", help="estimate exploration size by random descents"
    )
    estimate.add_argument("family")
    estimate.add_argument("--n", type=int, default=2)
    estimate.add_argument("--model", default="sc", choices=model_names())
    estimate.add_argument("--walks", type=int, default=50)

    return parser


_COMMANDS = {
    "models": _cmd_models,
    "litmus": _cmd_litmus,
    "litmus-file": _cmd_litmus_file,
    "bench": _cmd_bench,
    "verify": _cmd_verify,
    "compare": _cmd_compare,
    "repair": _cmd_repair,
    "estimate": _cmd_estimate,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
