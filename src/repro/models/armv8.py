"""ARMv8 (AArch64), simplified axiomatic form.

ARMv8 is *multi-copy atomic*: a write becomes visible to all other
cores at once, which the model captures by putting external
communication (rfe ∪ coe ∪ fre) straight into the ordered-before
relation ``ob``.  Local reordering is constrained only by
dependencies (dob), barriers (bob: dmb/isb and acquire/release
accesses) and RMW atomicity (aob).

Axiom: acyclic(ob), ob = obs ∪ dob ∪ bob ∪ aob, plus the common
internal axiom (SC-per-location) and atomicity.  Independent load
buffering is allowed; adding a dependency or barrier on either side
forbids it.
"""

from __future__ import annotations

from ..events import Event
from ..graphs import ExecutionGraph
from ..graphs.derived import coe, fre, graph_cached, rfe, rmw_pairs
from ..graphs.incremental import AcyclicFamily, acyclic_check
from ..relations import Relation, union
from .base import MemoryModel
from .common import (
    acquire_release_po,
    fence_ordered_po,
    hardware_prefix_preds,
    is_acquire_read,
    is_release_write,
    ppo_dependencies,
)


@graph_cached
def stlr_ldar(graph: ExecutionGraph) -> Relation:
    """ARMv8 bob includes [L]; po; [A]: a store-release is ordered
    before every po-later load-acquire (RCsc semantics)."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for i, a in enumerate(events):
            if not is_release_write(graph, a):
                continue
            for b in events[i + 1:]:
                if is_acquire_read(graph, b):
                    rel.add(a, b)
    return rel


@stlr_ldar.register_delta_pairs
def _stlr_ldar_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    if not is_acquire_read(graph, ev):
        return ()
    return [
        (a, ev)
        for a in graph._threads[ev.tid][: ev.index]
        if is_release_write(graph, a)
    ]


def _ob_relation(graph: ExecutionGraph):
    obs = union(rfe(graph), coe(graph), fre(graph))
    return union(
        obs,
        ppo_dependencies(graph),   # dob
        fence_ordered_po(graph),   # bob: dmb sy / dmb ld / dmb st / isb
        acquire_release_po(graph),  # bob: ldar / stlr
        stlr_ldar(graph),          # bob: [L]; po; [A] (RCsc)
        rmw_pairs(graph),          # aob
    )


OB_FAMILY = AcyclicFamily(
    "armv8-ob",
    (
        rfe,
        coe,
        fre,
        ppo_dependencies,
        fence_ordered_po,
        acquire_release_po,
        stlr_ldar,
        rmw_pairs,
    ),
    build=_ob_relation,
)


class ARMv8(MemoryModel):
    """ARMv8 (AArch64): the declarative other-multi-copy-atomic model with DMB fences and release/acquire accesses."""

    name = "armv8"
    porf_acyclic = False

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return acyclic_check(graph, OB_FAMILY)

    def axiom_relation(self, graph: ExecutionGraph):
        return _ob_relation(graph)

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        return hardware_prefix_preds(graph, ev)
