"""SC-per-location only: the weakest model in the family.

Useful as a baseline (every other model's executions are a subset of
its) and for isolating the coherence machinery in tests.

Because the axiom constrains nothing beyond per-location coherence,
the causal prefix must be equally minimal — reads-from sources, RMW
pairing and same-location program order only.  Dependencies and fences
must *not* enter it: they are not part of the axiom, so revisits
across them are legitimate (a revisit that would actually change a
value is rejected by the replay validation).  Out-of-thin-air values
still never appear: every constructed value is produced by replaying
the program.
"""

from __future__ import annotations

from ..events import Event
from ..graphs import ExecutionGraph
from .base import MemoryModel
from .common import minimal_prefix_preds


class CoherenceOnly(MemoryModel):
    """Coherence only: no global axiom beyond per-location SC and RMW atomicity — the weakest model here."""

    name = "coherence"
    porf_acyclic = False

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return True

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        return minimal_prefix_preds(graph, ev)
