"""SC-per-location only: the weakest model in the family.

Useful as a baseline (every other model's executions are a subset of
its) and for isolating the coherence machinery in tests.

Because the axiom constrains nothing beyond per-location coherence,
the causal prefix must be equally minimal — reads-from sources, RMW
pairing and same-location program order only.  Dependencies and fences
must *not* enter it: they are not part of the axiom, so revisits
across them are legitimate (a revisit that would actually change a
value is rejected by the replay validation).  Out-of-thin-air values
still never appear: every constructed value is produced by replaying
the program.
"""

from __future__ import annotations

from ..events import Event, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from .base import MemoryModel


class CoherenceOnly(MemoryModel):
    name = "coherence"
    porf_acyclic = False

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return True

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        preds: list[Event] = []
        lab = graph.label(ev)
        if isinstance(lab, ReadLabel):
            src = graph.rf(ev)
            if not src.is_initial:
                preds.append(src)
        if isinstance(lab, WriteLabel) and lab.exclusive:
            partner = graph.exclusive_pair(ev)
            if partner is not None:
                preds.append(partner)
        if not ev.is_initial and lab.is_access:
            for p in graph.thread_events(ev.tid)[: ev.index]:
                plab = graph.label(p)
                if plab.is_access and plab.location == lab.location:
                    preds.append(p)
        return preds
