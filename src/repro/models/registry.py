"""Model registry: look models up by name.

Besides the nine built-in models, the registry accepts declarative
models loaded from ``.cat`` files (:mod:`repro.cat`):

* :func:`load_cat` parses a file into a
  :class:`~repro.cat.model.CatModel` without registering it — the CLI's
  ``--model-file`` path;
* :func:`register_file` loads *and* registers, after which the model
  resolves by name everywhere a built-in does.

Lookups are case-insensitive regardless of how the model spelled its
name, and a miss lists every registered name.
"""

from __future__ import annotations

from .armv8 import ARMv8
from .base import MemoryModel
from .coherence import CoherenceOnly
from .imm import IMM
from .power import Power
from .pso import PSO
from .ra import ReleaseAcquire
from .rc11 import RC11
from .sc import SequentialConsistency
from .tso import TSO

#: keys are lowercased model names; the model keeps its display name
_MODELS: dict[str, MemoryModel] = {}


def register(model: MemoryModel, replace: bool = False) -> MemoryModel:
    """Add ``model`` under its (case-folded) name.

    Raises :class:`ValueError` on a duplicate name unless ``replace``.
    """
    key = model.name.lower()
    if key in _MODELS and not replace:
        raise ValueError(
            f"duplicate model name {model.name!r} "
            "(pass replace=True to overwrite)"
        )
    _MODELS[key] = model
    return model


def unregister(name: str) -> None:
    """Remove a registered model; a no-op when absent."""
    _MODELS.pop(name.strip().lower(), None)


for _m in (
    SequentialConsistency(),
    TSO(),
    PSO(),
    ReleaseAcquire(),
    RC11(),
    IMM(),
    ARMv8(),
    Power(),
    CoherenceOnly(),
):
    register(_m)


def get_model(name: str) -> MemoryModel:
    """Look a memory model up by its short name (e.g. ``"tso"``).

    Lookups are case-insensitive and ignore surrounding whitespace;
    an unknown name raises :class:`KeyError` listing every registered
    model.
    """
    try:
        return _MODELS[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(f"unknown memory model {name!r}; known: {known}") from None
    except AttributeError:
        raise TypeError(
            f"model name must be a string, got {type(name).__name__}"
        ) from None


def model_names() -> list[str]:
    return sorted(_MODELS)


def all_models() -> list[MemoryModel]:
    return [_MODELS[n] for n in model_names()]


# -- declarative (.cat) models ------------------------------------------------


def load_cat(path: str, name: str | None = None):
    """Parse a ``.cat`` file into a :class:`~repro.cat.model.CatModel`
    without registering it.

    The model's name defaults to the file's ``(* repro: name=... *)``
    directive, then the file stem.
    """
    from ..cat import load_cat_file

    return load_cat_file(path, name=name)


def register_file(path: str, name: str | None = None, replace: bool = False):
    """Load a ``.cat`` file and register the resulting model.

    Returns the registered :class:`~repro.cat.model.CatModel`; after
    this, :func:`get_model` resolves it by name like any built-in.
    """
    model = load_cat(path, name=name)
    return register(model, replace=replace)
