"""Model registry: look models up by name."""

from __future__ import annotations

from .armv8 import ARMv8
from .base import MemoryModel
from .coherence import CoherenceOnly
from .imm import IMM
from .power import Power
from .pso import PSO
from .ra import ReleaseAcquire
from .rc11 import RC11
from .sc import SequentialConsistency
from .tso import TSO

_MODELS: dict[str, MemoryModel] = {}


def register(model: MemoryModel) -> MemoryModel:
    if model.name in _MODELS:
        raise ValueError(f"duplicate model name {model.name!r}")
    _MODELS[model.name] = model
    return model


for _m in (
    SequentialConsistency(),
    TSO(),
    PSO(),
    ReleaseAcquire(),
    RC11(),
    IMM(),
    ARMv8(),
    Power(),
    CoherenceOnly(),
):
    register(_m)


def get_model(name: str) -> MemoryModel:
    """Look a memory model up by its short name (e.g. ``"tso"``)."""
    try:
        return _MODELS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(f"unknown memory model {name!r}; known: {known}") from None


def model_names() -> list[str]:
    return sorted(_MODELS)


def all_models() -> list[MemoryModel]:
    return [_MODELS[n] for n in model_names()]
