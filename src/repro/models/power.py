"""IBM POWER, following the herd model of Alglave–Maranget–Tautschnig
(CACM 2014) in a reduced form.

POWER is *not* multi-copy atomic: writes propagate to different cores
at different times, so external coherence edges are not globally
ordered; instead the model has a causality axiom over
``hb = ppo ∪ fence ∪ rfe`` and separate *propagation* and
*observation* axioms built from the cumulativity of sync/lwsync.

The classic separations this reproduces: MP needs only lwsync (or a
dependency on the reader side), SB needs full sync, and IRIW is
forbidden by sync but **not** by lwsync.
"""

from __future__ import annotations

from ..events import Event, FenceLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import co, external, fr, rf, rfe, writes
from ..graphs.incremental import AcyclicFamily, acyclic_check
from ..relations import Relation, optional, seq, union
from .base import MemoryModel
from .common import hardware_prefix_preds, fence_ordered_po, ppo_dependencies


def _hb_relation(graph: ExecutionGraph) -> Relation:
    return union(ppo_dependencies(graph), fence_ordered_po(graph), rfe(graph))


HB_FAMILY = AcyclicFamily(
    "power-hb", (ppo_dependencies, fence_ordered_po, rfe), build=_hb_relation
)


def _sync_ordered(graph: ExecutionGraph) -> Relation:
    """po pairs separated by a full (heavyweight) sync."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        syncs = [
            i
            for i, e in enumerate(events)
            if isinstance(graph.label(e), FenceLabel)
            and graph.label(e).kind.is_full()  # type: ignore[union-attr]
        ]
        if not syncs:
            continue
        for i, a in enumerate(events):
            if not graph.label(a).is_access:
                continue
            for j in range(i + 1, len(events)):
                b = events[j]
                if graph.label(b).is_access and any(i < k < j for k in syncs):
                    rel.add(a, b)
    return rel


class Power(MemoryModel):
    """IBM POWER: non-multi-copy-atomic propagation with sync/lwsync/isync fences and dependency ordering."""

    name = "power"
    porf_acyclic = False

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        if not acyclic_check(graph, HB_FAMILY):  # causality / no-thin-air
            return False
        fences = fence_ordered_po(graph)
        hb = _hb_relation(graph)

        universe = list(graph.events())
        hb_star = optional(hb.transitive_closure(), universe)
        esync = _sync_ordered(graph)
        com = union(rf(graph), co(graph), fr(graph))
        com_star = optional(com.transitive_closure(), universe)

        prop_base = seq(union(fences, seq(rfe(graph), fences)), hb_star)
        write_set = set(writes(graph))
        prop_ww = prop_base.filter(
            source=lambda e: e in write_set, target=lambda e: e in write_set
        )
        prop_base_star = optional(prop_base.transitive_closure(), universe)
        prop = union(prop_ww, seq(com_star, prop_base_star, esync, hb_star))

        if not union(co(graph), prop).is_acyclic():  # propagation
            return False
        observation = seq(external(fr(graph)), prop, hb_star)
        return observation.is_irreflexive()

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        return hardware_prefix_preds(graph, ev, annotations=False)
