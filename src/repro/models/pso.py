"""SPARC PSO: per-location (non-FIFO across locations) store buffers.

Like TSO but writes to *different* locations may also be reordered:
``ppo = po \\ ((W × R) ∪ (W × W))``.  Same-location write order is
still preserved (it is part of coherence).  MFENCE/sync restores full
order; a store-store fence (``DMB_ST``) restores W -> W.
"""

from __future__ import annotations

from ..events import Event, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import coe, fre, graph_cached, po, rfe
from ..graphs.incremental import AcyclicFamily, acyclic_check
from ..relations import Relation, union
from .base import MemoryModel
from .common import fence_ordered_po
from .tso import exclusive_flush


def _relaxed(graph: ExecutionGraph, a: Event, b: Event) -> bool:
    la, lb = graph.label(a), graph.label(b)
    if not isinstance(la, WriteLabel):
        return False
    if isinstance(lb, ReadLabel):
        return True
    # W -> W to a different location is buffered; same-location order is
    # enforced by coherence and kept in ppo for clarity.
    return isinstance(lb, WriteLabel) and lb.loc != la.loc


@graph_cached
def pso_ppo(graph: ExecutionGraph) -> Relation:
    """PSO preserved program order: po over accesses minus W -> R and
    W -> W-to-a-different-location.

    ppo ranges over accesses only: the fence *events* must not smuggle
    W->R order in through transitivity (W -> F -> R); a fence's effect
    enters solely via fence_ordered_po.
    """
    return Relation(
        (a, b)
        for a, b in po(graph).pairs()
        if graph.label(a).is_access
        and graph.label(b).is_access
        and not _relaxed(graph, a, b)
    )


@pso_ppo.register_delta_pairs
def _pso_ppo_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    if not graph._labels[ev].is_access:
        return ()
    out = []
    for a in graph._threads[ev.tid][: ev.index]:
        if not graph._labels[a].is_access:
            continue
        if _relaxed(graph, a, ev):
            continue
        out.append((a, ev))
    return out


def _axiom_relation(graph: ExecutionGraph):
    return union(
        pso_ppo(graph),
        fence_ordered_po(graph),
        exclusive_flush(graph),
        rfe(graph),
        coe(graph),
        fre(graph),
    )


PSO_FAMILY = AcyclicFamily(
    "pso",
    (pso_ppo, fence_ordered_po, exclusive_flush, rfe, coe, fre),
    build=_axiom_relation,
)


class PSO(MemoryModel):
    """SPARC PSO: per-location store buffers, so writes to different locations may reorder too."""

    name = "pso"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return acyclic_check(graph, PSO_FAMILY)

    def axiom_relation(self, graph: ExecutionGraph):
        return _axiom_relation(graph)
