"""SPARC PSO: per-location (non-FIFO across locations) store buffers.

Like TSO but writes to *different* locations may also be reordered:
``ppo = po \\ ((W × R) ∪ (W × W))``.  Same-location write order is
still preserved (it is part of coherence).  MFENCE/sync restores full
order; a store-store fence (``DMB_ST``) restores W -> W.
"""

from __future__ import annotations

from ..events import Event, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import external, co, fr, po, rfe
from ..relations import Relation, union
from .base import MemoryModel
from .common import fence_ordered_po
from .tso import _exclusive_flush


def _relaxed(graph: ExecutionGraph, a: Event, b: Event) -> bool:
    la, lb = graph.label(a), graph.label(b)
    if not isinstance(la, WriteLabel):
        return False
    if isinstance(lb, ReadLabel):
        return True
    # W -> W to a different location is buffered; same-location order is
    # enforced by coherence and kept in ppo for clarity.
    return isinstance(lb, WriteLabel) and lb.loc != la.loc


class PSO(MemoryModel):
    """SPARC PSO: per-location store buffers, so writes to different locations may reorder too."""

    name = "pso"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return self.axiom_relation(graph).is_acyclic()

    def axiom_relation(self, graph: ExecutionGraph):
        # ppo ranges over accesses only: the fence *events* must not
        # smuggle W->R order in through transitivity (W -> F -> R); a
        # fence's effect enters solely via fence_ordered_po
        ppo = Relation(
            (a, b)
            for a, b in po(graph).pairs()
            if graph.label(a).is_access
            and graph.label(b).is_access
            and not _relaxed(graph, a, b)
        )
        return union(
            ppo,
            fence_ordered_po(graph),
            _exclusive_flush(graph),
            rfe(graph),
            external(co(graph)),
            external(fr(graph)),
        )
