"""RC11 (Lahav, Vafeiadis, Kang, Hur, Dreyer 2017), simplified core.

The repaired C11 model: annotation-sensitive synchronisation, a COH
axiom stated against hb, an SC axiom (psc, in the padded form that
also covers SC fences), and the conservative no-thin-air fix —
acyclic(po ∪ rf) — which rules out load buffering.  This is the
strongest *language* model here; hardware models relax its porf
axiom, which is exactly the gap HMC targets.
"""

from __future__ import annotations

from ..graphs import ExecutionGraph
from ..graphs.derived import eco, po, rf
from ..relations import union
from .base import MemoryModel
from .c11 import happens_before, psc_acyclic, sc_events, synchronizes_with
from .ra import hb_coherent


class RC11(MemoryModel):
    """RC11: the repaired C11 model with per-access modes, SC fences, and porf acyclicity (no load buffering)."""

    name = "rc11"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        porf = union(po(graph), rf(graph))
        if not porf.is_acyclic():  # no-thin-air
            return False
        hb = happens_before(graph, synchronizes_with(graph))
        if not hb.is_irreflexive():
            return False
        if not hb_coherent(hb, eco(graph)):  # COH
            return False
        return psc_acyclic(graph, hb, sc_events(graph))
