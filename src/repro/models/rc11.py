"""RC11 (Lahav, Vafeiadis, Kang, Hur, Dreyer 2017), simplified core.

The repaired C11 model: annotation-sensitive synchronisation, a COH
axiom stated against hb, an SC axiom (psc, in the padded form that
also covers SC fences), and the conservative no-thin-air fix —
acyclic(po ∪ rf) — which rules out load buffering.  This is the
strongest *language* model here; hardware models relax its porf
axiom, which is exactly the gap HMC targets.
"""

from __future__ import annotations

from ..graphs import ExecutionGraph
from ..graphs.derived import eco
from ..graphs.incremental import acyclic_check, coherent_check
from .base import MemoryModel
from .c11 import HB_FAMILY, PORF_FAMILY, hb_c11, psc_acyclic, sc_events


class RC11(MemoryModel):
    """RC11: the repaired C11 model with per-access modes, SC fences, and porf acyclicity (no load buffering)."""

    name = "rc11"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        if not acyclic_check(graph, PORF_FAMILY):  # no-thin-air
            return False
        # irreflexive((po ∪ sw)+) ⟺ acyclic(po ∪ sw)
        if not acyclic_check(graph, HB_FAMILY):
            return False
        hb = hb_c11(graph)
        if not coherent_check(graph, "rc11", hb, eco(graph)):  # COH
            return False
        return psc_acyclic(graph, hb, sc_events(graph))
