"""C11-style synchronisation: release sequences, sw and hb.

Shared between the RA and RC11 models.  The definitions follow the
post-C++20 fixes adopted by RC11: a release sequence is the write
itself plus any chain of RMWs reading from it.
"""

from __future__ import annotations

from ..events import Event, FenceKind, FenceLabel, MemOrder, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import eco, graph_cached, po, rf
from ..relations import Relation, bracket, optional, seq, union

#: the C11 strength of each hardware fence, following the standard
#: compilation correspondences (sync/mfence <-> seq_cst fence,
#: lwsync <-> acq_rel, dmb ld / isync <-> acquire, dmb st <-> release)
_FENCE_C11: dict[FenceKind, MemOrder] = {
    FenceKind.MFENCE: MemOrder.SC,
    FenceKind.SYNC: MemOrder.SC,
    FenceKind.LWSYNC: MemOrder.ACQ_REL,
    FenceKind.DMB_LD: MemOrder.ACQ,
    FenceKind.ISYNC: MemOrder.ACQ,
    FenceKind.DMB_ST: MemOrder.REL,
}


def fence_c11_order(label: FenceLabel) -> MemOrder:
    """The C11 ordering a fence contributes under language models."""
    if label.kind is FenceKind.C11:
        return label.order
    return _FENCE_C11[label.kind]


def release_sequence(graph: ExecutionGraph, write: Event) -> set[Event]:
    """``write`` plus every RMW write reachable through rf ∘ rmw."""
    out = {write}
    frontier = [write]
    while frontier:
        w = frontier.pop()
        for r in graph.readers_of(w):
            lab = graph.label(r)
            if isinstance(lab, ReadLabel) and lab.exclusive:
                partner = graph.exclusive_pair(r)
                if partner is not None and partner not in out:
                    out.add(partner)
                    frontier.append(partner)
    return out


def _release_source(graph: ExecutionGraph, write: Event) -> Event | None:
    """The hb source for synchronisation through ``write``: the write
    itself when it is a release, else a po-earlier release fence."""
    lab = graph.label(write)
    assert isinstance(lab, WriteLabel)
    if lab.order.is_release():
        return write
    if write.is_initial:
        return None
    for e in reversed(graph.thread_events(write.tid)[: write.index]):
        elab = graph.label(e)
        if isinstance(elab, FenceLabel) and fence_c11_order(elab).is_release():
            return e
    return None


def _acquire_target(graph: ExecutionGraph, read: Event) -> Event | None:
    """The hb target: the read itself when acquire, else a po-later
    acquire fence."""
    lab = graph.label(read)
    assert isinstance(lab, ReadLabel)
    if lab.order.is_acquire():
        return read
    for e in graph.thread_events(read.tid)[read.index + 1:]:
        elab = graph.label(e)
        if isinstance(elab, FenceLabel) and fence_c11_order(elab).is_acquire():
            return e
    return None


@graph_cached
def synchronizes_with(graph: ExecutionGraph) -> Relation:
    """The C11 sw relation over the graph."""
    sw = Relation()
    for write in graph.writes():
        source = _release_source(graph, write)
        if source is None:
            continue
        for member in release_sequence(graph, write):
            for read in graph.readers_of(member):
                target = _acquire_target(graph, read)
                if target is not None and source != target:
                    sw.add(source, target)
    return sw


def happens_before(graph: ExecutionGraph, sw: Relation | None = None) -> Relation:
    """hb = (po ∪ sw)+."""
    if sw is None:
        sw = synchronizes_with(graph)
    return union(po(graph), sw).transitive_closure()


@graph_cached
def strong_happens_before(graph: ExecutionGraph) -> Relation:
    """hb where *every* rf edge synchronises (the RA model's hb)."""
    return union(po(graph), rf(graph)).transitive_closure()


def sc_events(graph: ExecutionGraph, accesses: bool = True) -> list[Event]:
    """Events participating in the SC axiom: SC-ordered accesses (when
    ``accesses``) and fences whose C11 strength is seq_cst."""
    out = []
    for e in graph.events():
        lab = graph.label(e)
        if isinstance(lab, FenceLabel):
            if fence_c11_order(lab).is_sc():
                out.append(e)
        elif accesses and isinstance(lab, (ReadLabel, WriteLabel)):
            if lab.order.is_sc():
                out.append(e)
    return out


def psc_acyclic(graph: ExecutionGraph, hb: Relation, sc: list[Event]) -> bool:
    """The RC11-style SC axiom: acyclic(psc) with
    psc = [Esc] ; (hb ∪ hb? ; eco ; hb?) ; [Esc]."""
    if len(sc) < 2:
        return True
    esc = bracket(sc)
    universe = list(graph.events())
    hb_opt = optional(hb, universe)
    scb = union(hb, seq(hb_opt, eco(graph), hb_opt))
    psc = seq(esc, scb, esc)
    return psc.is_acyclic()
