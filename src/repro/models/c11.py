"""C11-style synchronisation: release sequences, sw and hb.

Shared between the RA and RC11 models.  The definitions follow the
post-C++20 fixes adopted by RC11: a release sequence is the write
itself plus any chain of RMWs reading from it.
"""

from __future__ import annotations

from ..events import Event, FenceKind, FenceLabel, MemOrder, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import eco, graph_cached, po, rf
from ..graphs.incremental import AcyclicFamily
from ..relations import Relation, bracket, optional, seq, union

#: the C11 strength of each hardware fence, following the standard
#: compilation correspondences (sync/mfence <-> seq_cst fence,
#: lwsync <-> acq_rel, dmb ld / isync <-> acquire, dmb st <-> release)
_FENCE_C11: dict[FenceKind, MemOrder] = {
    FenceKind.MFENCE: MemOrder.SC,
    FenceKind.SYNC: MemOrder.SC,
    FenceKind.LWSYNC: MemOrder.ACQ_REL,
    FenceKind.DMB_LD: MemOrder.ACQ,
    FenceKind.ISYNC: MemOrder.ACQ,
    FenceKind.DMB_ST: MemOrder.REL,
}


def fence_c11_order(label: FenceLabel) -> MemOrder:
    """The C11 ordering a fence contributes under language models."""
    if label.kind is FenceKind.C11:
        return label.order
    return _FENCE_C11[label.kind]


def release_sequence(graph: ExecutionGraph, write: Event) -> set[Event]:
    """``write`` plus every RMW write reachable through rf ∘ rmw."""
    out = {write}
    frontier = [write]
    while frontier:
        w = frontier.pop()
        for r in graph.readers_of(w):
            lab = graph.label(r)
            if isinstance(lab, ReadLabel) and lab.exclusive:
                partner = graph.exclusive_pair(r)
                if partner is not None and partner not in out:
                    out.add(partner)
                    frontier.append(partner)
    return out


def _release_source(graph: ExecutionGraph, write: Event) -> Event | None:
    """The hb source for synchronisation through ``write``: the write
    itself when it is a release, else a po-earlier release fence."""
    lab = graph.label(write)
    assert isinstance(lab, WriteLabel)
    if lab.order.is_release():
        return write
    if write.is_initial:
        return None
    for e in reversed(graph.thread_events(write.tid)[: write.index]):
        elab = graph.label(e)
        if isinstance(elab, FenceLabel) and fence_c11_order(elab).is_release():
            return e
    return None


def _acquire_target(graph: ExecutionGraph, read: Event) -> Event | None:
    """The hb target: the read itself when acquire, else a po-later
    acquire fence."""
    lab = graph.label(read)
    assert isinstance(lab, ReadLabel)
    if lab.order.is_acquire():
        return read
    for e in graph.thread_events(read.tid)[read.index + 1:]:
        elab = graph.label(e)
        if isinstance(elab, FenceLabel) and fence_c11_order(elab).is_acquire():
            return e
    return None


@graph_cached
def synchronizes_with(graph: ExecutionGraph) -> Relation:
    """The C11 sw relation over the graph."""
    sw = Relation()
    for write in graph.writes():
        source = _release_source(graph, write)
        if source is None:
            continue
        for member in release_sequence(graph, write):
            for read in graph.readers_of(member):
                target = _acquire_target(graph, read)
                if target is not None and source != target:
                    sw.add(source, target)
    return sw


def _chain_back(graph: ExecutionGraph, member: Event) -> list[Event]:
    """Every write whose release sequence ``member`` belongs to: walk
    the RMW chain backwards through exclusive-pair and rf edges."""
    out = [member]
    w = member
    while True:
        lab = graph.label(w)
        if not (isinstance(lab, WriteLabel) and lab.exclusive):
            return out
        partner = graph.exclusive_pair(w)
        if partner is None:
            return out
        prev = graph.rf(partner)
        if prev is None or prev in out:
            return out
        out.append(prev)
        w = prev


def _sync_sources(graph: ExecutionGraph, member: Event) -> set[Event]:
    """Release sources synchronising through a read of ``member``."""
    sources: set[Event] = set()
    for base in _chain_back(graph, member):
        source = _release_source(graph, base)
        if source is not None:
            sources.add(source)
    return sources


@synchronizes_with.register_delta_pairs
def _sw_delta(graph, delta):
    # sw pairs only ever *appear* as events are added, and a pair's
    # last-added constituent is either the reader (when the acquire
    # target already exists: the read itself) or a po-later acquire
    # fence.  Pairs a read contributes towards a fence added later are
    # emitted by both deltas; duplicates are harmless.
    if delta[0] != "event":
        return ()
    ev = delta[1]
    lab = graph._labels[ev]
    out = []
    if isinstance(lab, ReadLabel):
        target = _acquire_target(graph, ev)
        if target is not None:
            member = graph._rf.get(ev)
            if member is not None:
                out.extend(
                    (source, target)
                    for source in _sync_sources(graph, member)
                    if source != target
                )
    elif isinstance(lab, FenceLabel) and fence_c11_order(lab).is_acquire():
        for rd in graph._threads[ev.tid][: ev.index]:
            if not isinstance(graph._labels[rd], ReadLabel):
                continue
            if _acquire_target(graph, rd) != ev:
                continue
            member = graph._rf.get(rd)
            if member is None:
                continue
            out.extend(
                (source, ev)
                for source in _sync_sources(graph, member)
                if source != ev
            )
    return out


def happens_before(graph: ExecutionGraph, sw: Relation | None = None) -> Relation:
    """hb = (po ∪ sw)+."""
    if sw is None:
        return hb_c11(graph)
    return union(po(graph), sw).transitive_closure()


@graph_cached
def hb_c11(graph: ExecutionGraph) -> Relation:
    """The cached C11 hb = (po ∪ sw)+."""
    return union(po(graph), synchronizes_with(graph)).transitive_closure()


def _closure_extend(new: Relation, ev: Event, direct: set) -> Relation:
    """Extend a transitive closure whose base edges only point *into*
    ``ev``: the closure gains (x, ev) for every direct predecessor and
    every node that already reaches one."""
    if not direct:
        return new
    preds = set(direct)
    for x, succs in new._succ.items():
        if x not in preds and not succs.isdisjoint(direct):
            preds.add(x)
    return new.extended((x, ev) for x in preds)


@hb_c11.register_incremental
def _hb_c11_incremental(graph, old, deltas):
    new = old
    for delta in deltas:
        if delta[0] != "event":
            continue
        ev = delta[1]
        direct = set(graph._threads[ev.tid][: ev.index])
        direct.update(a for a, b in _sw_delta(graph, delta) if b == ev)
        new = _closure_extend(new, ev, direct)
    return new


@graph_cached
def strong_happens_before(graph: ExecutionGraph) -> Relation:
    """hb where *every* rf edge synchronises (the RA model's hb)."""
    return union(po(graph), rf(graph)).transitive_closure()


@strong_happens_before.register_incremental
def _strong_hb_incremental(graph, old, deltas):
    new = old
    for delta in deltas:
        if delta[0] != "event":
            continue
        ev = delta[1]
        direct = set(graph._threads[ev.tid][: ev.index])
        if isinstance(graph._labels[ev], ReadLabel):
            src = graph._rf.get(ev)
            if src is not None:
                direct.add(src)
        new = _closure_extend(new, ev, direct)
    return new


#: (po ∪ rf) acyclicity — RC11's porf axiom, and (by the equivalence
#: irreflexive((po ∪ rf)+) ⟺ acyclic(po ∪ rf)) the RA model's
#: strong-hb irreflexivity check
PORF_FAMILY = AcyclicFamily(
    "porf", (po, rf), build=lambda g: union(po(g), rf(g))
)

#: (po ∪ sw) acyclicity ⟺ hb irreflexivity, for RC11 and IMM
HB_FAMILY = AcyclicFamily(
    "hb",
    (po, synchronizes_with),
    build=lambda g: union(po(g), synchronizes_with(g)),
)


def sc_events(graph: ExecutionGraph, accesses: bool = True) -> list[Event]:
    """Events participating in the SC axiom: SC-ordered accesses (when
    ``accesses``) and fences whose C11 strength is seq_cst."""
    out = []
    for e in graph.events():
        lab = graph.label(e)
        if isinstance(lab, FenceLabel):
            if fence_c11_order(lab).is_sc():
                out.append(e)
        elif accesses and isinstance(lab, (ReadLabel, WriteLabel)):
            if lab.order.is_sc():
                out.append(e)
    return out


def psc_acyclic(graph: ExecutionGraph, hb: Relation, sc: list[Event]) -> bool:
    """The RC11-style SC axiom: acyclic(psc) with
    psc = [Esc] ; (hb ∪ hb? ; eco ; hb?) ; [Esc]."""
    if len(sc) < 2:
        return True
    esc = bracket(sc)
    universe = list(graph.events())
    hb_opt = optional(hb, universe)
    scb = union(hb, seq(hb_opt, eco(graph), hb_opt))
    psc = seq(esc, scb, esc)
    return psc.is_acyclic()
