"""Explaining inconsistency: which axiom rejects a graph, and the
violating cycle.

The checker itself only needs a boolean, but anyone developing a
model (or puzzling over why an outcome is forbidden) wants the *why*:
``explain_inconsistency`` re-runs the shared axioms with cycle
extraction and names the culprit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Event
from ..graphs import ExecutionGraph
from ..graphs.derived import co, fr, po_loc, rf, rmw_pairs
from ..relations import union
from .base import MemoryModel


@dataclass(frozen=True)
class Diagnosis:
    """Why a graph is inconsistent (or the statement that it is not)."""

    consistent: bool
    axiom: str | None = None
    cycle: tuple[Event, ...] | None = None
    detail: str = ""

    def __str__(self) -> str:
        if self.consistent:
            return "consistent"
        msg = f"violates {self.axiom}"
        if self.cycle:
            path = " -> ".join(repr(e) for e in self.cycle)
            msg += f": cycle {path}"
        if self.detail:
            msg += f" ({self.detail})"
        return msg


def explain_inconsistency(
    graph: ExecutionGraph, model: MemoryModel
) -> Diagnosis:
    """Name the axiom a graph violates under ``model``."""
    coherence = union(po_loc(graph), rf(graph), co(graph), fr(graph))
    cycle = coherence.find_cycle()
    if cycle is not None:
        return Diagnosis(
            consistent=False,
            axiom="coherence (SC-per-location)",
            cycle=tuple(cycle),
        )
    for read, write in rmw_pairs(graph).pairs():
        src = graph.rf(read)
        order = graph.co_order(graph.label(write).location)
        if order.index(write) != order.index(src) + 1:
            between = order[order.index(src) + 1]
            return Diagnosis(
                consistent=False,
                axiom="atomicity",
                detail=(
                    f"{between!r} intervenes between {read!r}'s source "
                    f"{src!r} and its exclusive write {write!r}"
                ),
            )
    if model.axiom_holds(graph):
        return Diagnosis(consistent=True)
    relation = model.axiom_relation(graph)
    cycle = relation.find_cycle() if relation is not None else None
    return Diagnosis(
        consistent=False,
        axiom=f"the {model.name} global axiom",
        cycle=tuple(cycle) if cycle else None,
        detail="" if cycle else
        "the violation is in a non-acyclicity component (hb/psc/observation)",
    )
