"""IMM-core: the Intermediate Memory Model (Podkopaev, Lahav,
Vafeiadis, POPL 2019), the model HMC's evaluation centres on.

IMM sits between language models and hardware: it has C11-style
synchronisation (so compiled rel/acq code works) but a *hardware*
no-thin-air axiom — acyclicity of ``ar``, built from external
reads-from, barrier order and dependency-preserved program order —
so independent load buffering is **allowed**.

This is a faithful-in-structure core: coherence + atomicity + the ar
axiom, with ppo given by syntactic addr/data/ctrl dependencies closed
with internal reads-from and RMW pairs.  Exotic components of full IMM
(detour-induced edges, the SC axiom for SC accesses) are approximated
by the bob/psc-free form below and the C11 fence handling of
``fence_ordered_po``; the litmus suite pins the resulting verdicts.
"""

from __future__ import annotations

from ..events import Event
from ..graphs import ExecutionGraph
from ..graphs.derived import eco, rfe
from ..graphs.incremental import AcyclicFamily, acyclic_check, coherent_check
from ..relations import union
from .base import MemoryModel
from .c11 import HB_FAMILY, hb_c11, psc_acyclic, sc_events
from .common import (
    acquire_release_po,
    fence_ordered_po,
    hardware_prefix_preds,
    ppo_dependencies,
)


def _ar_relation(graph: ExecutionGraph):
    return union(
        rfe(graph),
        fence_ordered_po(graph),   # bob: barriers
        acquire_release_po(graph),  # bob: rel/acq annotations
        ppo_dependencies(graph),   # ppo: deps ∪ rfi ∪ rmw, closed
    )


AR_FAMILY = AcyclicFamily(
    "imm-ar",
    (rfe, fence_ordered_po, acquire_release_po, ppo_dependencies),
    build=_ar_relation,
)


class IMM(MemoryModel):
    """IMM: the intermediate model between C11-style languages and hardware, allowing load buffering via dependencies."""

    name = "imm"
    porf_acyclic = False

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        # irreflexive((po ∪ sw)+) ⟺ acyclic(po ∪ sw)
        if not acyclic_check(graph, HB_FAMILY):
            return False
        hb = hb_c11(graph)
        if not coherent_check(graph, "imm", hb, eco(graph)):  # COH
            return False
        if not psc_acyclic(graph, hb, sc_events(graph)):  # SC axiom
            return False
        return acyclic_check(graph, AR_FAMILY)

    def axiom_relation(self, graph: ExecutionGraph):
        """The ar relation (note: COH and psc are separate checks)."""
        return _ar_relation(graph)

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        return hardware_prefix_preds(graph, ev)
