"""Axioms and relation fragments shared between memory models.

Every supported model includes *coherence* (SC-per-location) and
*atomicity*; hardware models additionally share the shape of their
fence- and dependency-induced orderings, collected here so each model
file reads like its paper definition.
"""

from __future__ import annotations

from ..events import Event, FenceKind, FenceLabel, MemOrder, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import (
    co,
    dependency,
    fr,
    graph_cached,
    po_loc,
    rf,
    rmw_pairs,
    same_thread,
)
from ..graphs.incremental import AcyclicFamily, acyclic_check
from ..relations import Relation, union

#: coherence is checked on *every* model and every step, making it the
#: incremental acyclicity checker's highest-traffic family
COHERENCE_FAMILY = AcyclicFamily(
    "coherence",
    (po_loc, rf, co, fr),
    build=lambda g: union(po_loc(g), rf(g), co(g), fr(g)),
)


def sc_per_location(graph: ExecutionGraph) -> bool:
    """Coherence: po-loc ∪ rf ∪ co ∪ fr is acyclic.

    Locations are independent, so this is checked globally; the po-loc
    component only ever links same-location accesses.
    """
    return acyclic_check(graph, COHERENCE_FAMILY)


def atomicity_ok(graph: ExecutionGraph) -> bool:
    """RMW atomicity: no write intervenes, in coherence order, between
    an exclusive read's source and its exclusive write."""
    for read, write in rmw_pairs(graph).pairs():
        src = graph.rf(read)
        order = graph.co_order(graph.label(write).location)  # type: ignore[arg-type]
        try:
            i, j = order.index(src), order.index(write)
        except ValueError:
            # the rf source or the exclusive write is not in the
            # location's coherence order — only constructible through
            # from_parts with inconsistent inputs, and certainly not
            # an atomic RMW
            return False
        if j != i + 1:
            return False
    return True


# -- classifying events -------------------------------------------------------


def is_read(graph: ExecutionGraph, e: Event) -> bool:
    return isinstance(graph.label(e), ReadLabel)


def is_write(graph: ExecutionGraph, e: Event) -> bool:
    return isinstance(graph.label(e), WriteLabel)


def is_acquire_read(graph: ExecutionGraph, e: Event) -> bool:
    lab = graph.label(e)
    return isinstance(lab, ReadLabel) and lab.order.is_acquire()


def is_release_write(graph: ExecutionGraph, e: Event) -> bool:
    lab = graph.label(e)
    return isinstance(lab, WriteLabel) and lab.order.is_release()


def fence_orders(kind: FenceKind, order: MemOrder, before: str, after: str) -> bool:
    """Does a fence of this kind order an access class ``before`` it
    against an access class ``after`` it?  Classes are ``"R"``/``"W"``.
    """
    if kind.is_full():
        return True
    if kind is FenceKind.LWSYNC:
        return not (before == "W" and after == "R")
    if kind is FenceKind.DMB_LD:
        return before == "R"
    if kind is FenceKind.DMB_ST:
        return before == "W" and after == "W"
    if kind is FenceKind.ISYNC:
        # approximation of the ctrl+isync idiom: reads before the
        # barrier are ordered against everything after it
        return before == "R"
    if kind is FenceKind.C11:
        if order is MemOrder.SC or order is MemOrder.ACQ_REL:
            return True
        if order is MemOrder.ACQ:
            return before == "R"
        if order is MemOrder.REL:
            return after == "W"
    return False


def _access_class(graph: ExecutionGraph, e: Event) -> str | None:
    lab = graph.label(e)
    if isinstance(lab, ReadLabel):
        return "R"
    if isinstance(lab, WriteLabel):
        return "W"
    return None


@graph_cached
def fence_ordered_po(graph: ExecutionGraph) -> Relation:
    """All po pairs (a, b) with an ordering fence strictly between them."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        fence_positions = [
            (i, graph.label(e))
            for i, e in enumerate(events)
            if isinstance(graph.label(e), FenceLabel)
        ]
        if not fence_positions:
            continue
        for i, a in enumerate(events):
            cls_a = _access_class(graph, a)
            if cls_a is None:
                continue
            for j in range(i + 1, len(events)):
                b = events[j]
                cls_b = _access_class(graph, b)
                if cls_b is None:
                    continue
                for k, flab in fence_positions:
                    if i < k < j and fence_orders(
                        flab.kind, flab.order, cls_a, cls_b  # type: ignore[union-attr]
                    ):
                        rel.add(a, b)
                        break
    return rel


@fence_ordered_po.register_delta_pairs
def _fence_ordered_po_delta(graph, delta):
    # thread prefixes are append-only, so a new event only gains pairs
    # in which it is the *later* access
    if delta[0] != "event":
        return ()
    ev = delta[1]
    cls_b = _access_class(graph, ev)
    if cls_b is None:
        return ()
    events = graph._threads[ev.tid]
    j = ev.index
    fence_positions = [
        (k, graph._labels[e])
        for k, e in enumerate(events[:j])
        if isinstance(graph._labels[e], FenceLabel)
    ]
    if not fence_positions:
        return ()
    out = []
    for i in range(j):
        a = events[i]
        cls_a = _access_class(graph, a)
        if cls_a is None:
            continue
        for k, flab in fence_positions:
            if i < k and fence_orders(flab.kind, flab.order, cls_a, cls_b):
                out.append((a, ev))
                break
    return out


@graph_cached
def acquire_release_po(graph: ExecutionGraph) -> Relation:
    """po edges induced by access annotations: everything after an
    acquire read is ordered, everything before a release write is."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if is_acquire_read(graph, a) and graph.label(b).is_access:
                    rel.add(a, b)
                elif graph.label(a).is_access and is_release_write(graph, b):
                    rel.add(a, b)
    return rel


@acquire_release_po.register_delta_pairs
def _acquire_release_po_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    if not graph._labels[ev].is_access:
        return ()
    ev_is_release_write = is_release_write(graph, ev)
    out = []
    for a in graph._threads[ev.tid][: ev.index]:
        if is_acquire_read(graph, a):
            out.append((a, ev))
        elif ev_is_release_write and graph._labels[a].is_access:
            out.append((a, ev))
    return out


@graph_cached
def ppo_dependencies(graph: ExecutionGraph) -> Relation:
    """Hardware preserved program order from syntactic dependencies.

    addr and data dependencies order a read before the dependent
    access; ctrl dependencies only order reads before *writes* (reads
    may be satisfied speculatively past a branch).  The relation is
    transitively closed together with internal reads-from, since values
    flow through same-thread memory too.
    """
    addr_data = dependency(graph, "ad")
    ctrl = dependency(graph, "c").filter(
        target=lambda e: is_write(graph, e)
    )
    from ..graphs.derived import rfi as rfi_rel

    base = union(addr_data, ctrl, rmw_pairs(graph), rfi_rel(graph))
    return base.transitive_closure()


@ppo_dependencies.register_delta_pairs
def _ppo_dependencies_delta(graph, delta):
    # closure pairs always end at the newer event (base edges only
    # point *into* a new event), so the pairs a delta contributed are
    # exactly the new event's in-edges in the maintained closure.
    # ppo_dependencies(graph) is current-version here: the wrapper's
    # custom updater (below) runs first, so no recursion.
    if delta[0] != "event":
        return ()
    ev = delta[1]
    closure = ppo_dependencies(graph)
    return [(x, ev) for x, succs in closure._succ.items() if ev in succs]


@ppo_dependencies.register_incremental
def _ppo_dependencies_incremental(graph, old, deltas):
    # A new event has no outgoing base edges (deps point backwards,
    # its rfi readers and rmw write partner arrive later — each with a
    # delta of its own), so the closure gains exactly the pairs
    # (ancestor, new event).  Direct in-edges mirror the base union
    # above; ancestors are the direct predecessors' predecessors in the
    # already-closed relation.
    new = old
    for delta in deltas:
        if delta[0] != "event":
            continue
        ev = delta[1]
        lab = graph._labels[ev]
        direct = set(lab.addr_deps | lab.data_deps)
        if isinstance(lab, WriteLabel):
            direct.update(lab.ctrl_deps)
            if lab.exclusive:
                partner = graph.exclusive_pair(ev)
                if partner is not None:
                    direct.add(partner)
        elif isinstance(lab, ReadLabel):
            src = graph._rf.get(ev)
            if src is not None and same_thread(src, ev):
                direct.add(src)
        if not direct:
            continue
        preds = set(direct)
        for x, succs in new._succ.items():
            if x not in preds and not succs.isdisjoint(direct):
                preds.add(x)
        new = new.extended((x, ev) for x in preds)
    return new


def minimal_prefix_preds(graph: ExecutionGraph, ev: Event) -> list[Event]:
    """One-step causal predecessors under a coherence-only model.

    The weakest sound prefix: reads-from sources, RMW pairing, and
    same-location program order — nothing else, so revisits across
    dependencies and fences stay possible (see
    :class:`repro.models.coherence.CoherenceOnly`, whose notion this
    is; declarative models select it with ``prefix=minimal``).
    """
    preds: list[Event] = []
    lab = graph.label(ev)
    if isinstance(lab, ReadLabel):
        src = graph.rf(ev)
        if not src.is_initial:
            preds.append(src)
    if isinstance(lab, WriteLabel) and lab.exclusive:
        partner = graph.exclusive_pair(ev)
        if partner is not None:
            preds.append(partner)
    if not ev.is_initial and lab.is_access:
        for p in graph.thread_events(ev.tid)[: ev.index]:
            plab = graph.label(p)
            if plab.is_access and plab.location == lab.location:
                preds.append(p)
    return preds


def hardware_prefix_preds(
    graph: ExecutionGraph, ev: Event, annotations: bool = True
) -> list[Event]:
    """One-step causal predecessors of ``ev`` under a hardware model.

    This is the relation HMC substitutes for po ∪ rf: reads-from
    sources, syntactic dependencies, RMW pairing, same-location program
    order, fence-induced order and — when the model respects them
    (``annotations``) — acquire/release access annotations.  A
    program-order predecessor *not* related by any of these is absent —
    which is precisely what allows load-buffering revisits.  Models
    that ignore C11 annotations (POWER, coherence-only) must pass
    ``annotations=False`` or they would lose RMW-chained load-buffering
    executions involving annotated accesses.
    """
    preds: list[Event] = []
    lab = graph.label(ev)
    if isinstance(lab, ReadLabel):
        src = graph.rf(ev)
        if not src.is_initial:
            preds.append(src)
    # addr/data dependencies always order; a ctrl dependency only
    # orders the dependent *writes* — reads may be satisfied
    # speculatively past a branch, so they stay revisitable across one
    # (the revisit's replay validation rejects any revisit that would
    # actually change the control flow)
    preds.extend(d for d in (lab.addr_deps | lab.data_deps) if d in graph)
    if isinstance(lab, WriteLabel):
        preds.extend(d for d in lab.ctrl_deps if d in graph)
    if isinstance(lab, WriteLabel) and lab.exclusive:
        partner = graph.exclusive_pair(ev)
        if partner is not None:
            preds.append(partner)
    if ev.is_initial:
        return preds
    cls_e = _access_class(graph, ev)
    events = graph.thread_events(ev.tid)[: ev.index]
    for i, p in enumerate(events):
        plab = graph.label(p)
        cls_p = _access_class(graph, p)
        if cls_p is not None and cls_e is not None:
            if plab.location == lab.location:
                preds.append(p)
                continue
            if annotations and (
                is_acquire_read(graph, p) or is_release_write(graph, ev)
            ):
                preds.append(p)
                continue
            between = graph.thread_events(ev.tid)[i + 1 : ev.index]
            for f in between:
                flab = graph.label(f)
                if isinstance(flab, FenceLabel) and fence_orders(
                    flab.kind, flab.order, cls_p, cls_e
                ):
                    preds.append(p)
                    break
    return preds
