"""The memory-model interface.

HMC is *parametric* in the memory model: the exploration algorithm only
asks a model three questions —

1. :meth:`MemoryModel.is_consistent`: is this (partial or complete)
   execution graph allowed?  All supported models are *prefix-closed*
   (restricting a consistent graph keeps it consistent), which makes
   checking partial graphs a sound pruning step.

2. :meth:`MemoryModel.prefix_preds`: which events must causally precede
   a given event in any exploration that constructs it.  A newly added
   write may only backward-revisit reads *outside* this closure.  For
   porf-acyclic models this is po ∪ rf; for hardware models (IMM,
   ARMv8, POWER) it is the dependency-based relation that lets HMC
   generate load-buffering outcomes.

3. :attr:`MemoryModel.porf_acyclic`: whether the model forbids po ∪ rf
   cycles.  This selects the default causal-prefix notion and is the
   hypothesis under which the exploration's duplicate suppression is
   strongest (measured zero on the litmus corpus); residual duplicates
   under any model are deduplicated by canonical hashing and reported.
"""

from __future__ import annotations

import abc

from ..events import Event
from ..graphs import ExecutionGraph, porf_preds
from ..obs import NULL_OBSERVER
from .common import atomicity_ok, sc_per_location


class MemoryModel(abc.ABC):
    """Base class of all axiomatic memory models."""

    #: short identifier used by the registry and the CLI
    name: str = "abstract"
    #: does the model forbid (po ∪ rf) cycles?
    porf_acyclic: bool = True
    #: the active observer (models are registry singletons, so the
    #: explorer attaches this for the duration of one run and detaches
    #: it afterwards — see Explorer.run)
    _observer = NULL_OBSERVER

    # -- observability -------------------------------------------------------

    def set_observer(self, observer) -> None:
        """Attach (or, with :data:`NULL_OBSERVER`, detach) the observer
        that times this model's consistency checks per axiom."""
        self._observer = observer

    # -- consistency ---------------------------------------------------------

    def coherence_ok(self, graph: ExecutionGraph) -> bool:
        """SC-per-location plus RMW atomicity — common to every model."""
        obs = self._observer
        if not obs.enabled:
            return sc_per_location(graph) and atomicity_ok(graph)
        with obs.phase("check:coherence"):
            ok = sc_per_location(graph) and atomicity_ok(graph)
        if not ok:
            # failure counters; totals come from the phase's `calls`
            obs.inc("check:coherence:fail")
        return ok

    def is_consistent(self, graph: ExecutionGraph) -> bool:
        """Full consistency: coherence, atomicity and the model axiom."""
        obs = self._observer
        if not obs.enabled:
            return self.coherence_ok(graph) and self.axiom_holds(graph)
        if not self.coherence_ok(graph):  # timed in coherence_ok
            return False
        with obs.phase(f"check:axiom:{self.name}"):
            ok = self.axiom_holds(graph)
        if not ok:
            obs.inc(f"check:axiom:{self.name}:fail")
        return ok

    @abc.abstractmethod
    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        """The model-specific global axiom (beyond coherence)."""

    def axiom_relation(self, graph: ExecutionGraph):
        """The relation whose acyclicity is the global axiom, when the
        model has that shape (used for diagnosis); None otherwise."""
        return None

    # -- exploration hooks ------------------------------------------------------

    def prefix_preds(self, graph: ExecutionGraph, ev: Event) -> list[Event]:
        """Events that must causally precede ``ev`` (one step).

        The default — po-predecessor plus rf source — is the GenMC
        notion and is correct for every porf-acyclic model.
        """
        return porf_preds(graph, ev)

    def __repr__(self) -> str:
        return f"<model {self.name}>"
