"""Sequential consistency (Lamport 1979), axiomatically.

A graph is SC-consistent iff po ∪ rf ∪ co ∪ fr is acyclic — every
event can be placed in one interleaving respecting program order in
which reads see the latest write.
"""

from __future__ import annotations

from ..graphs import ExecutionGraph
from ..graphs.derived import co, fr, po, rf
from ..graphs.incremental import AcyclicFamily, acyclic_check
from ..relations import union
from .base import MemoryModel


def _axiom_relation(graph: ExecutionGraph):
    return union(po(graph), rf(graph), co(graph), fr(graph))


SC_FAMILY = AcyclicFamily("sc", (po, rf, co, fr), build=_axiom_relation)


class SequentialConsistency(MemoryModel):
    """Sequential consistency: a single total order over all accesses, consistent with po and rf."""

    name = "sc"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return acyclic_check(graph, SC_FAMILY)

    def axiom_relation(self, graph: ExecutionGraph):
        return _axiom_relation(graph)
