"""Sequential consistency (Lamport 1979), axiomatically.

A graph is SC-consistent iff po ∪ rf ∪ co ∪ fr is acyclic — every
event can be placed in one interleaving respecting program order in
which reads see the latest write.
"""

from __future__ import annotations

from ..graphs import ExecutionGraph
from ..graphs.derived import co, fr, po, rf
from ..relations import union
from .base import MemoryModel


class SequentialConsistency(MemoryModel):
    """Sequential consistency: a single total order over all accesses, consistent with po and rf."""

    name = "sc"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return self.axiom_relation(graph).is_acyclic()

    def axiom_relation(self, graph: ExecutionGraph):
        return union(po(graph), rf(graph), co(graph), fr(graph))
