"""x86-TSO (Owens, Sarkar, Sewell 2009), in herd-style axiomatic form.

Each core has a FIFO store buffer: the only relaxation is that a write
may be delayed past subsequent *reads* of other locations.  MFENCE and
locked (exclusive) instructions flush the buffer.

Axiom: acyclic(ppo ∪ fence ∪ rfe ∪ coe ∪ fre) with
``ppo = po \\ (W × R)``, plus the common coherence and atomicity.
"""

from __future__ import annotations

from ..events import Event, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import coe, fre, graph_cached, po, rfe
from ..graphs.incremental import AcyclicFamily, acyclic_check
from ..relations import Relation, union
from .base import MemoryModel
from .common import fence_ordered_po


def _buffered(graph: ExecutionGraph, a: Event, b: Event) -> bool:
    """Is the po pair (a, b) relaxed by a FIFO store buffer (W -> R)?"""
    return isinstance(graph.label(a), WriteLabel) and isinstance(
        graph.label(b), ReadLabel
    )


@graph_cached
def exclusive_flush(graph: ExecutionGraph) -> Relation:
    """Locked RMW instructions act as full fences on x86: order every
    access before an exclusive access against every access after it."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        locked = [
            i
            for i, e in enumerate(events)
            if getattr(graph.label(e), "exclusive", False)
        ]
        if not locked:
            continue
        for i, a in enumerate(events):
            if not graph.label(a).is_access:
                continue
            for j in range(i + 1, len(events)):
                b = events[j]
                if not graph.label(b).is_access:
                    continue
                if any(i <= k <= j for k in locked):
                    rel.add(a, b)
    return rel


@exclusive_flush.register_delta_pairs
def _exclusive_flush_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    if not graph._labels[ev].is_access:
        return ()
    events = graph._threads[ev.tid]
    j = ev.index
    locked = [
        k
        for k in range(j + 1)
        if getattr(graph._labels[events[k]], "exclusive", False)
    ]
    if not locked:
        return ()
    out = []
    for i in range(j):
        a = events[i]
        if not graph._labels[a].is_access:
            continue
        if any(i <= k for k in locked):
            out.append((a, ev))
    return out


# back-compat alias (pso imports it; tests may too)
_exclusive_flush = exclusive_flush


@graph_cached
def tso_ppo(graph: ExecutionGraph) -> Relation:
    """TSO preserved program order: po over accesses minus W -> R.

    ppo ranges over accesses only: the fence *events* must not smuggle
    W->R order in through transitivity (W -> F -> R); a fence's effect
    enters solely via fence_ordered_po.
    """
    return Relation(
        (a, b)
        for a, b in po(graph).pairs()
        if graph.label(a).is_access
        and graph.label(b).is_access
        and not _buffered(graph, a, b)
    )


@tso_ppo.register_delta_pairs
def _tso_ppo_delta(graph, delta):
    if delta[0] != "event":
        return ()
    ev = delta[1]
    lab = graph._labels[ev]
    if not lab.is_access:
        return ()
    ev_is_read = isinstance(lab, ReadLabel)
    out = []
    for a in graph._threads[ev.tid][: ev.index]:
        alab = graph._labels[a]
        if not alab.is_access:
            continue
        if ev_is_read and isinstance(alab, WriteLabel):
            continue  # W -> R is buffered
        out.append((a, ev))
    return out


def _axiom_relation(graph: ExecutionGraph):
    return union(
        tso_ppo(graph),
        fence_ordered_po(graph),
        exclusive_flush(graph),
        rfe(graph),
        coe(graph),
        fre(graph),
    )


TSO_FAMILY = AcyclicFamily(
    "tso",
    (tso_ppo, fence_ordered_po, exclusive_flush, rfe, coe, fre),
    build=_axiom_relation,
)


class TSO(MemoryModel):
    """x86-TSO: store buffering only — writes may pass later reads, everything else stays ordered."""

    name = "tso"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return acyclic_check(graph, TSO_FAMILY)

    def axiom_relation(self, graph: ExecutionGraph):
        return _axiom_relation(graph)
