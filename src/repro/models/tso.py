"""x86-TSO (Owens, Sarkar, Sewell 2009), in herd-style axiomatic form.

Each core has a FIFO store buffer: the only relaxation is that a write
may be delayed past subsequent *reads* of other locations.  MFENCE and
locked (exclusive) instructions flush the buffer.

Axiom: acyclic(ppo ∪ fence ∪ rfe ∪ coe ∪ fre) with
``ppo = po \\ (W × R)``, plus the common coherence and atomicity.
"""

from __future__ import annotations

from ..events import Event, ReadLabel, WriteLabel
from ..graphs import ExecutionGraph
from ..graphs.derived import external, co, fr, po, rfe
from ..relations import Relation, union
from .base import MemoryModel
from .common import fence_ordered_po


def _buffered(graph: ExecutionGraph, a: Event, b: Event) -> bool:
    """Is the po pair (a, b) relaxed by a FIFO store buffer (W -> R)?"""
    return isinstance(graph.label(a), WriteLabel) and isinstance(
        graph.label(b), ReadLabel
    )


def _exclusive_flush(graph: ExecutionGraph) -> Relation:
    """Locked RMW instructions act as full fences on x86: order every
    access before an exclusive access against every access after it."""
    rel = Relation()
    for tid in graph.thread_ids():
        events = graph.thread_events(tid)
        locked = [
            i
            for i, e in enumerate(events)
            if getattr(graph.label(e), "exclusive", False)
        ]
        if not locked:
            continue
        for i, a in enumerate(events):
            if not graph.label(a).is_access:
                continue
            for j in range(i + 1, len(events)):
                b = events[j]
                if not graph.label(b).is_access:
                    continue
                if any(i <= k <= j for k in locked):
                    rel.add(a, b)
    return rel


class TSO(MemoryModel):
    """x86-TSO: store buffering only — writes may pass later reads, everything else stays ordered."""

    name = "tso"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        return self.axiom_relation(graph).is_acyclic()

    def axiom_relation(self, graph: ExecutionGraph):
        # ppo ranges over accesses only: the fence *events* must not
        # smuggle W->R order in through transitivity (W -> F -> R); a
        # fence's effect enters solely via fence_ordered_po
        ppo = Relation(
            (a, b)
            for a, b in po(graph).pairs()
            if graph.label(a).is_access
            and graph.label(b).is_access
            and not _buffered(graph, a, b)
        )
        return union(
            ppo,
            fence_ordered_po(graph),
            _exclusive_flush(graph),
            rfe(graph),
            external(co(graph)),
            external(fr(graph)),
        )
