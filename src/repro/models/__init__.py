"""Axiomatic memory models: the consistency predicates HMC checks
execution graphs against."""

from .armv8 import ARMv8
from .base import MemoryModel
from .coherence import CoherenceOnly
from .diagnose import Diagnosis, explain_inconsistency
from .imm import IMM
from .power import Power
from .pso import PSO
from .ra import ReleaseAcquire
from .rc11 import RC11
from .registry import (
    all_models,
    get_model,
    load_cat,
    model_names,
    register,
    register_file,
    unregister,
)
from .sc import SequentialConsistency
from .tso import TSO

__all__ = [
    "ARMv8",
    "CoherenceOnly",
    "Diagnosis",
    "explain_inconsistency",
    "IMM",
    "MemoryModel",
    "PSO",
    "Power",
    "RC11",
    "ReleaseAcquire",
    "SequentialConsistency",
    "TSO",
    "all_models",
    "get_model",
    "load_cat",
    "model_names",
    "register",
    "register_file",
    "unregister",
]
