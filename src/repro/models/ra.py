"""Release/Acquire (the SRA fragment of C11).

Every write behaves as a release and every read as an acquire, so
hb = (po ∪ rf)+.  Consistency: hb is acyclic (hence no load
buffering) and coherence holds against hb: no event is hb-before
something eco-before it.
"""

from __future__ import annotations

from ..graphs import ExecutionGraph
from ..graphs.derived import eco
from ..graphs.incremental import acyclic_check, coherent_check
from ..relations import Relation
from .base import MemoryModel
from .c11 import PORF_FAMILY, psc_acyclic, sc_events, strong_happens_before


def hb_coherent(hb: Relation, eco_rel: Relation) -> bool:
    """irreflexive(hb ; eco): eco must not contradict happens-before."""
    return all((b, a) not in eco_rel for a, b in hb.pairs())


class ReleaseAcquire(MemoryModel):
    """Release/acquire (the SRA fragment of C11): hb = (po | rf)+ acyclic and coherent, with an SC-fence axiom."""

    name = "ra"
    porf_acyclic = True

    def axiom_holds(self, graph: ExecutionGraph) -> bool:
        # irreflexive((po ∪ rf)+) ⟺ acyclic(po ∪ rf)
        if not acyclic_check(graph, PORF_FAMILY):
            return False
        hb = strong_happens_before(graph)
        if not coherent_check(graph, "ra", hb, eco(graph)):
            return False
        # RA has no SC *accesses* (they degrade to rel/acq), but SC
        # fences still restore order between the events around them
        return psc_acyclic(graph, hb, sc_events(graph, accesses=False))
