"""Random small programs, for differential testing.

The generator favours the features that stress the exploration
algorithm: multiple writes per location (coherence branching), RMWs
(atomicity), fences of every kind, data/ctrl dependencies (hardware
prefixes), and mixed access orderings (C11 models).
"""

from __future__ import annotations

import random

from ..events import FenceKind, MemOrder
from ..lang import Program, ProgramBuilder
from ..lang.builder import BlockBuilder
from ..lang.expr import Reg

_ORDERS = [
    MemOrder.RLX,
    MemOrder.RLX,
    MemOrder.ACQ,
    MemOrder.REL,
    MemOrder.SC,
]
_FENCES = [
    FenceKind.MFENCE,
    FenceKind.SYNC,
    FenceKind.LWSYNC,
    FenceKind.DMB_LD,
    FenceKind.DMB_ST,
    FenceKind.C11,
]


class RandomProgramGenerator:
    """Generates bounded random concurrent programs."""

    def __init__(
        self,
        seed: int,
        locations: tuple[str, ...] = ("x", "y"),
        values: tuple[int, ...] = (1, 2),
        max_threads: int = 3,
        max_stmts: int = 3,
        with_rmws: bool = True,
        with_fences: bool = True,
        with_deps: bool = True,
        with_assumes: bool = False,
    ) -> None:
        self.rng = random.Random(seed)
        self.locations = locations
        self.values = values
        self.max_threads = max_threads
        self.max_stmts = max_stmts
        self.with_rmws = with_rmws
        self.with_fences = with_fences
        self.with_deps = with_deps
        self.with_assumes = with_assumes

    def program(self, index: int) -> Program:
        rng = self.rng
        builder = ProgramBuilder(f"rand-{index}")
        num_threads = rng.randint(2, self.max_threads)
        for _ in range(num_threads):
            thread = builder.thread()
            loaded: list[Reg] = []
            for _ in range(rng.randint(1, self.max_stmts)):
                self._statement(rng, thread, loaded)
        return builder.build()

    def _statement(self, rng: random.Random, block: BlockBuilder, loaded: list[Reg]) -> None:
        loc = rng.choice(self.locations)
        order = rng.choice(_ORDERS)
        choices = ["load", "store", "store"]
        if self.with_rmws:
            choices += ["fai", "cas"]
        if self.with_fences:
            choices.append("fence")
        if self.with_deps and loaded:
            choices += ["dep_store", "ctrl_store"]
        if self.with_assumes and loaded:
            choices.append("assume")
        kind = rng.choice(choices)
        if kind == "load":
            loaded.append(block.load(loc, order))
        elif kind == "store":
            block.store(loc, rng.choice(self.values), order)
        elif kind == "fai":
            loaded.append(block.fai(loc, rng.choice(self.values), order))
        elif kind == "cas":
            loaded.append(
                block.cas(loc, rng.choice((0,) + self.values), rng.choice(self.values), order)
            )
        elif kind == "fence":
            block.fence(rng.choice(_FENCES))
        elif kind == "dep_store":
            reg = rng.choice(loaded)
            block.store(loc, reg + rng.choice(self.values), order)
        elif kind == "ctrl_store":
            reg = rng.choice(loaded)
            value = rng.choice(self.values)
            block.if_(reg.eq(0), lambda b: b.store(loc, value, order))
        elif kind == "assume":
            reg = rng.choice(loaded)
            block.assume(reg.ne(rng.choice(self.values)))

    def programs(self, count: int):
        for i in range(count):
            yield self.program(i)
