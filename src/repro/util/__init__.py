"""Utilities: random program generation for differential testing."""

from .randprog import RandomProgramGenerator

__all__ = ["RandomProgramGenerator"]
