"""repro — a reproduction of *HMC: Model Checking for Hardware Memory
Models* (Kokologiannakis & Vafeiadis, ASPLOS 2020).

A stateless model checker for bounded concurrent programs, parametric
in an axiomatic memory model (SC, x86-TSO, PSO, RA, RC11, IMM, ARMv8,
POWER).  Quickstart::

    from repro import ProgramBuilder, verify

    p = ProgramBuilder("SB")
    t1 = p.thread(); t1.store("x", 1); a = t1.load("y")
    t2 = p.thread(); t2.store("y", 1); b = t2.load("x")
    p.observe(a, b)

    print(verify(p.build(), "tso").summary())
"""

from .core import (
    ExplorationOptions,
    Explorer,
    VerificationResult,
    count_executions,
    estimate_explorations,
    verify,
)
from .core.compare import compare_models
from .core.repair import synthesize_fences
from .events import FenceKind, MemOrder
from .lang import Program, ProgramBuilder
from .models import MemoryModel, all_models, get_model, model_names
from .obs import Observer, ProgressReporter

__version__ = "1.0.0"

__all__ = [
    "ExplorationOptions",
    "compare_models",
    "estimate_explorations",
    "synthesize_fences",
    "Explorer",
    "FenceKind",
    "MemOrder",
    "MemoryModel",
    "Observer",
    "Program",
    "ProgramBuilder",
    "ProgressReporter",
    "VerificationResult",
    "all_models",
    "count_executions",
    "get_model",
    "model_names",
    "verify",
    "__version__",
]
