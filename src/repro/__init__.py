"""repro — a reproduction of *HMC: Model Checking for Hardware Memory
Models* (Kokologiannakis & Vafeiadis, ASPLOS 2020).

A stateless model checker for bounded concurrent programs, parametric
in an axiomatic memory model (SC, x86-TSO, PSO, RA, RC11, IMM, ARMv8,
POWER).  Quickstart::

    from repro import ProgramBuilder, verify

    p = ProgramBuilder("SB")
    t1 = p.thread(); t1.store("x", 1); a = t1.load("y")
    t2 = p.thread(); t2.store("y", 1); b = t2.load("x")
    p.observe(a, b)

    print(verify(p.build(), "tso").summary())

This module is the **one public API surface**: everything an
application needs — verification, litmus verdicts, model comparison,
fence synthesis, batched suites, ``.cat`` model loading — is importable
from ``repro`` directly, and ``tests/test_api_surface.py`` pins the
exact export list.  Submodules remain importable for power users
(``repro.suite``, ``repro.obs``, ``repro.backends``, ...), but any
name starting with an underscore, and any submodule name not
re-exported here, is internal by convention and may change without
notice.  See docs/API.md for the full reference and the migration
guide from pre-façade imports.
"""

__version__ = "1.1.0"

# the façade: entry points ----------------------------------------------
from .core import (
    Estimate,
    ExplorationOptions,
    Explorer,
    VerificationResult,
    count_executions,
    estimate_explorations,
    resolve_options,
    verify,
)
from .core.compare import ModelComparison, compare_models
from .core.repair import RepairResult, synthesize_fences

# programs and models ---------------------------------------------------
from .events import FenceKind, MemOrder
from .lang import Program, ProgramBuilder
from .models import (
    MemoryModel,
    all_models,
    get_model,
    load_cat,
    model_names,
)

# litmus tests ----------------------------------------------------------
from .litmus import (
    LitmusTest,
    LitmusVerdict,
    all_litmus_tests,
    get_litmus,
    litmus_names,
    parse_litmus,
    run_litmus,
)

# batched suites --------------------------------------------------------
from .suite import (
    SuiteResult,
    SuiteTask,
    TaskResult,
    litmus_matrix,
    litmus_task,
    program_task,
    run_suite,
)

# observability ---------------------------------------------------------
from .obs import Observer, ProgressReporter, SpanTracer

# the verification service ----------------------------------------------
from .service import ServiceClient, ServiceError, serve

__all__ = [
    # verification
    "verify",
    "count_executions",
    "estimate_explorations",
    "compare_models",
    "synthesize_fences",
    "Explorer",
    "ExplorationOptions",
    "resolve_options",
    "VerificationResult",
    "ModelComparison",
    "RepairResult",
    "Estimate",
    # programs and models
    "Program",
    "ProgramBuilder",
    "MemOrder",
    "FenceKind",
    "MemoryModel",
    "get_model",
    "load_cat",
    "model_names",
    "all_models",
    # litmus
    "LitmusTest",
    "LitmusVerdict",
    "run_litmus",
    "get_litmus",
    "litmus_names",
    "all_litmus_tests",
    "parse_litmus",
    # suites
    "run_suite",
    "SuiteTask",
    "SuiteResult",
    "TaskResult",
    "litmus_task",
    "program_task",
    "litmus_matrix",
    # observability
    "Observer",
    "ProgressReporter",
    "SpanTracer",
    # the verification service
    "ServiceClient",
    "ServiceError",
    "serve",
    "__version__",
]
