"""Load buffering: the behaviour that separates HMC from porf-based
stateless model checking.

In LB each thread loads one location and then stores to the other::

    thread 0: a := x; y := 1        thread 1: b := y; x := 1

The outcome (a, b) = (1, 1) needs each load to read the *other*
thread's po-later store — a cycle in po ∪ rf.  Exploration based on
porf prefixes (GenMC for RC11) can never construct it; HMC's
dependency-based prefixes can, and real ARM/POWER hardware exhibits
it.  Add a data dependency or a fence on either side and it vanishes
everywhere.

Run with::

    python examples/load_buffering.py
"""

from repro import ProgramBuilder, verify


def lb(dep: str | None):
    p = ProgramBuilder(f"LB+{dep or 'plain'}")
    regs = []
    for locs in (("x", "y"), ("y", "x")):
        t = p.thread()
        r = t.load(locs[0])
        if dep == "data":
            t.store(locs[1], r - r + 1)  # value depends on the load
        elif dep == "addr":
            t.store((locs[1], r - r), 1)  # address depends on the load
        else:
            t.store(locs[1], 1)
        regs.append(r)
    p.observe(*regs)
    return p.build()


def lb_observed(program, model):
    result = verify(program, model, stop_on_error=False)
    outcomes = {tuple(v for _, v in o) for o in result.outcomes}
    return (1, 1) in outcomes, result.executions


print(f"{'variant':12s}" + "".join(f"{m:>8s}" for m in ("rc11", "imm", "armv8", "power")))
for dep in (None, "data", "addr"):
    program = lb(dep)
    row = f"{program.name:12s}"
    for model in ("rc11", "imm", "armv8", "power"):
        seen, _ = lb_observed(program, model)
        row += f"{'x' if seen else '.':>8s}"
    print(row)

print("\nx = (1,1) observable.  Plain LB is allowed on hardware but")
print("forbidden by RC11's no-thin-air axiom; any dependency kills it")
print("everywhere (that would be an out-of-thin-air value).")

# show what *mechanism* makes the difference: disable backward
# revisits and even IMM cannot construct the LB execution
program = lb(None)
full = verify(program, "imm", stop_on_error=False)
crippled = verify(program, "imm", stop_on_error=False, backward_revisits=False)
print(
    f"\nIMM with backward revisits: {full.executions} executions; "
    f"without: {crippled.executions} — the (1,1) graph needs a read "
    "added early to observe a write added later."
)
