"""Compilation soundness, checked by model checking.

Compilers implement C11 atomics with fence-insertion schemes; whether
those schemes are *sound* (introduce no behaviour the source model
forbids) is exactly a model-checking question once both sides can be
verified exhaustively:

    behaviours(compile(P), hardware-model) ⊆ behaviours(P, source-model)

Running the inclusion over the litmus corpus reproduces the central
result of the IMM line of work: the standard mappings are sound
against IMM everywhere, and unsound against RC11 on precisely one
shape — load buffering — because RC11's conservative no-thin-air
axiom forbids an outcome plain hardware loads/stores can produce.

Run with::

    python examples/compilation_soundness.py
"""

from repro import verify
from repro.lang.mappings import compile_to
from repro.litmus import all_litmus_tests

TARGETS = ("tso", "power", "armv8")


def behaviours(program, model):
    result = verify(program, model, stop_on_error=False)
    return set(result.outcomes), set(result.final_states)


for source_model in ("imm", "rc11"):
    print(f"== source model: {source_model} ==")
    unsound = []
    for test in all_litmus_tests():
        src = behaviours(test.program, source_model)
        for target in TARGETS:
            compiled = compile_to(test.program, target)
            tgt = behaviours(compiled, target)
            if not (tgt[0] <= src[0] and tgt[1] <= src[1]):
                unsound.append((test.name, target))
    if unsound:
        print(f"  mapping UNSOUND on: {unsound}")
    else:
        print(f"  all {len(all_litmus_tests())} corpus entries sound on all targets")
    print()

print("the RC11 failures are exactly LB on power/armv8: hardware")
print("executes the compiled relaxed loads early, producing the (1,1)")
print("outcome RC11's porf-acyclicity forbids at the source level —")
print("the gap IMM (and hence HMC's hardware-model checking) closes.")
