"""Verifying lock implementations across memory models.

The same ticket-lock code is safe or broken depending on the model and
the access annotations:

* with relaxed accesses it is safe under SC, TSO — and ARMv8, whose
  multi-copy atomicity orders the external coherence edges — but
  broken under IMM and POWER, where the unlock store does not order
  the critical section's effects;
* upgrading the synchronisation accesses to acq/rel fixes it on every
  model that honours C11 annotations (POWER, which has none, needs
  real fences — compile with lwsync/isync in practice).

Run with::

    python examples/lock_verification.py
"""

from repro import verify
from repro.bench.workloads import seqlock, ticket_lock, ttas_lock
from repro.events import MemOrder

MODELS = ("sc", "tso", "armv8", "imm", "power")


def report(title, program_for_model):
    print(f"== {title} ==")
    for model in MODELS:
        result = verify(program_for_model(model), model, stop_on_error=False)
        verdict = "SAFE  " if result.ok else "BROKEN"
        print(
            f"  {model:6s}: {verdict} "
            f"({result.executions} executions, {result.blocked} blocked, "
            f"{len(result.errors)} violations)"
        )
    print()


report("ticket lock, relaxed accesses", lambda m: ticket_lock(2))
report(
    "ticket lock, acq/rel accesses",
    lambda m: ticket_lock(2, MemOrder.ACQ_REL),
)
report("TTAS lock, relaxed accesses", lambda m: ttas_lock(2))
report("seqlock, rel/acq data", lambda m: seqlock(1, 1))

print("note how POWER stays broken even with annotations: it has no")
print("native acquire/release accesses, so the C11 mapping must insert")
print("fences - exactly the class of bug HMC-style checking exists to catch.")
