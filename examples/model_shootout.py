"""Tool comparison on one program: execution graphs vs traces.

Reproduces the shape of the paper's headline comparison table on the
store-buffering family: the number of *states* each technique explores
for the same verification question.

Run with::

    python examples/model_shootout.py
"""

import time

from repro import verify
from repro.baselines import (
    explore_dpor,
    explore_interleavings,
    explore_store_buffers,
)
from repro.bench.workloads import sb_n

print(f"{'n':>2s} {'technique':22s} {'model':5s} {'states':>8s} {'time':>8s}")
for n in (2, 3):
    program = sb_n(n)

    t0 = time.perf_counter()
    hmc_sc = verify(program, "sc", stop_on_error=False)
    print(
        f"{n:2d} {'HMC (graphs)':22s} {'sc':5s} "
        f"{hmc_sc.executions:8d} {time.perf_counter() - t0:7.3f}s"
    )

    t0 = time.perf_counter()
    il = explore_interleavings(program)
    print(
        f"{n:2d} {'interleavings':22s} {'sc':5s} "
        f"{il.traces:8d} {time.perf_counter() - t0:7.3f}s"
    )

    t0 = time.perf_counter()
    dp = explore_dpor(program)
    print(
        f"{n:2d} {'sleep-set DPOR':22s} {'sc':5s} "
        f"{dp.traces:8d} {time.perf_counter() - t0:7.3f}s"
    )

    t0 = time.perf_counter()
    hmc_tso = verify(program, "tso", stop_on_error=False)
    print(
        f"{n:2d} {'HMC (graphs)':22s} {'tso':5s} "
        f"{hmc_tso.executions:8d} {time.perf_counter() - t0:7.3f}s"
    )

    t0 = time.perf_counter()
    op = explore_store_buffers(program, "tso")
    print(
        f"{n:2d} {'store-buffer machine':22s} {'tso':5s} "
        f"{op.traces:8d} {time.perf_counter() - t0:7.3f}s"
    )
    print()

print("HMC explores one state per consistent execution graph; the")
print("operational techniques pay for every interleaving of the same")
print("graph — and under TSO additionally for every buffer schedule.")
