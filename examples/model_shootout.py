"""Tool comparison on one program: execution graphs vs traces.

Reproduces the shape of the paper's headline comparison table on the
store-buffering family: the number of *states* each technique explores
for the same verification question.  Every engine runs through the
uniform backend registry (``repro.backends``); baseline-specific
counters (trace counts and the like) land in ``result.meta``.

Run with::

    python examples/model_shootout.py
"""

import time

from repro import ExplorationOptions
from repro.backends import get_backend
from repro.bench.workloads import sb_n

OPTIONS = ExplorationOptions(stop_on_error=False)

ROWS = (
    ("HMC (graphs)", "hmc", "sc"),
    ("interleavings", "interleaving", "sc"),
    ("sleep-set DPOR", "dpor", "sc"),
    ("HMC (graphs)", "hmc", "tso"),
    ("store-buffer machine", "storebuffer", "tso"),
)

print(f"{'n':>2s} {'technique':22s} {'model':5s} {'states':>8s} {'time':>8s}")
for n in (2, 3):
    program = sb_n(n)
    for label, backend, model in ROWS:
        t0 = time.perf_counter()
        result = get_backend(backend).run(program, model, OPTIONS)
        states = result.meta.get("traces", result.executions)
        print(
            f"{n:2d} {label:22s} {model:5s} "
            f"{states:8d} {time.perf_counter() - t0:7.3f}s"
        )
    print()

print("HMC explores one state per consistent execution graph; the")
print("operational techniques pay for every interleaving of the same")
print("graph — and under TSO additionally for every buffer schedule.")
