"""Quickstart: check the store-buffering litmus test against several
memory models.

Run with::

    python examples/quickstart.py
"""

from repro import ProgramBuilder, verify

# Build the classic store-buffering (Dekker core) program:
#
#   thread 0: x := 1; a := y        thread 1: y := 1; b := x
#
# Under sequential consistency at least one thread sees the other's
# store, so (a, b) = (0, 0) is impossible.  Every weaker model allows
# it: each store can sit in a store buffer while the loads run.
p = ProgramBuilder("SB")
t0 = p.thread()
t0.store("x", 1)
a = t0.load("y")
t1 = p.thread()
t1.store("y", 1)
b = t1.load("x")
p.observe(a, b)
program = p.build()

for model in ("sc", "tso", "ra", "rc11", "imm", "armv8", "power"):
    result = verify(program, model, stop_on_error=False)
    outcomes = sorted(
        tuple(v for _, v in outcome) for outcome in result.outcomes
    )
    both_zero = "yes" if (0, 0) in outcomes else "no "
    print(
        f"{model:6s}: {result.executions} executions, "
        f"(a,b)=(0,0) allowed: {both_zero}  outcomes: {outcomes}"
    )

print(
    "\nThe (0,0) row is the whole story of weak memory: one graph "
    "exploration per model answered it exhaustively."
)
