"""Fence placement: find a real mutual-exclusion bug under TSO and fix
it with one MFENCE.

Peterson's algorithm is correct under sequential consistency, but on
x86 the entry-protocol stores can be delayed in the store buffer past
the entry-protocol loads — both threads read stale flags and both
enter the critical section.  The checker finds the violation and
prints the witness execution; adding an MFENCE between the stores and
the loads restores correctness.

Run with::

    python examples/fence_placement.py
"""

from repro import verify
from repro.bench.workloads import dekker, peterson

print("== Peterson's algorithm ==")
for model in ("sc", "tso"):
    result = verify(peterson(fenced=False), model, stop_on_error=False)
    verdict = "SAFE" if result.ok else f"BROKEN ({len(result.errors)} violating executions)"
    print(f"  unfenced under {model:3s}: {verdict}")

broken = verify(peterson(fenced=False), "tso")  # stop at the first error
print("\n  witness execution for the TSO violation:")
for line in broken.errors[0].witness.splitlines():
    print("   ", line)

fixed = verify(peterson(fenced=True), "tso", stop_on_error=False)
print(
    f"\n  with MFENCE after the entry stores: "
    f"{'SAFE' if fixed.ok else 'still broken?!'} "
    f"({fixed.executions} executions checked)"
)

print("\n== Dekker-style entry protocol ==")
for fenced in (False, True):
    for model in ("sc", "tso", "pso"):
        result = verify(dekker(fenced), model, stop_on_error=False)
        print(
            f"  {'fenced ' if fenced else 'plain  '} {model:3s}: "
            f"{'SAFE' if result.ok else 'BROKEN'}"
        )
