"""A tour of the litmus corpus: the verdict matrix across all models.

Prints, for every litmus test in the corpus, whether its probed
relaxed outcome is observable under each memory model — the
reproduction of experiment T1.  ``x`` marks allowed (observable),
``.`` forbidden.

Run with::

    python examples/litmus_tour.py
"""

from repro.litmus import MODELS, all_litmus_tests, allowed, run_litmus

header = f"{'test':17s}" + "".join(f"{m:>10s}" for m in MODELS)
print(header)
print("-" * len(header))

deviations = 0
for test in all_litmus_tests():
    cells = []
    for model in MODELS:
        verdict = run_litmus(test, model)
        mark = "x" if verdict.observed else "."
        if verdict.observed != allowed(test.name, model):
            mark += "!"  # deviation from the literature verdict
            deviations += 1
        cells.append(f"{mark:>10s}")
    print(f"{test.name:17s}" + "".join(cells))

print("-" * len(header))
print("x = probed outcome observable, . = forbidden")
if deviations:
    print(f"WARNING: {deviations} cells deviate from the literature!")
else:
    print("all verdicts match the published model definitions")

print("\nhighlights to look for:")
print("  SB        : forbidden only under sc (store buffers everywhere else)")
print("  MP        : pso relaxes W->W, so it joins the hardware models")
print("  LB        : the porf-acyclic models (sc..rc11) all forbid it;")
print("              imm/armv8/power allow it - HMC's raison d'etre")
print("  IRIW      : ra/rc11 allow it without SC fences; TSO never does")
print("  IRIW+lwsyncs: POWER's lwsync is not cumulative enough - still allowed")
print("  WRC       : allowed on power (not multi-copy atomic), forbidden on armv8")
