"""Automatic fence synthesis: let the checker place the fences.

The workflow the paper's line of tools enables: take an algorithm
that is correct under SC, discover where it breaks on a weak model,
and search the space of fence placements for a minimal repair — each
candidate verified exhaustively by the model checker.

Run with::

    python examples/fence_synthesis.py
"""

from repro import verify
from repro.bench.datastructures import rw_lock
from repro.bench.workloads import dekker, peterson
from repro.core.repair import synthesize_fences
from repro.events import FenceKind

JOBS = [
    ("Dekker entry protocol", dekker(False), "tso", FenceKind.MFENCE),
    ("Peterson's algorithm", peterson(False), "tso", FenceKind.MFENCE),
    # acq/rel is enough for the rwlock on TSO/ARMv8, but its
    # writer-checks-readers handshake is a store-buffering shape:
    # on IMM it needs a real fence, and the synthesiser finds where
    ("reader/writer lock", rw_lock(1, 1), "imm", FenceKind.SYNC),
]

for title, program, model, fence in JOBS:
    broken = verify(program, model, stop_on_error=False)
    print(f"== {title} under {model} ==")
    print(
        f"  before: {'SAFE' if broken.ok else 'BROKEN'} "
        f"({len(broken.errors)} violating executions)"
    )
    result = synthesize_fences(program, model, fence=fence, max_fences=2)
    print(f"  {result.summary()}")
    if result.repaired is not None and not result.already_safe:
        check = verify(result.repaired, model, stop_on_error=False)
        print(
            f"  after : {'SAFE' if check.ok else 'still broken'} "
            f"({check.executions} executions re-verified)"
        )
    print()

print("every candidate placement was verified exhaustively — the")
print("returned fence sets are minimal in cardinality by construction.")
