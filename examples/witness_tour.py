"""Witnesses three ways: schedules, diagnosis, and Graphviz.

Every verdict the checker gives can be *explained*:

* an erroneous execution linearises into a schedule (or provably does
  not — the "no interleaving explains this" case);
* a forbidden outcome has a violating cycle in some axiom;
* any execution graph exports to Graphviz DOT for papers and slides.

Run with::

    python examples/witness_tour.py
"""

from repro import ProgramBuilder, verify
from repro.core.witness import format_witness, linearize
from repro.graphs.dot import to_dot
from repro.models import explain_inconsistency, get_model

# 1. a TSO bug, replayed as a schedule -----------------------------------
from repro.bench.workloads import dekker

broken = verify(dekker(False), "tso")
print("== Dekker's TSO violation, as a schedule ==")
print(format_witness(broken.errors[0].graph))

# 2. why is the SB outcome forbidden under SC? ---------------------------
print("\n== why SC forbids the (0,0) store-buffering outcome ==")
p = ProgramBuilder("SB")
t0 = p.thread(); t0.store("x", 1); a = t0.load("y")
t1 = p.thread(); t1.store("y", 1); b = t1.load("x")
p.observe(a, b)
relaxed = [
    g
    for g in verify(
        p.build(), "tso", stop_on_error=False, collect_executions=True
    ).execution_graphs
    if all(g.value_of(r) == 0 for r in g.reads())
]
diagnosis = explain_inconsistency(relaxed[0], get_model("sc"))
print(diagnosis)

# 3. the same graph, as Graphviz -----------------------------------------
print("\n== the witness graph, as DOT (render with `dot -Tpdf`) ==")
print(to_dot(relaxed[0], "SB-relaxed")[:400] + "\n...")

# 4. a load-buffering execution has no schedule at all --------------------
print("\n== load buffering: beyond interleavings ==")
p = ProgramBuilder("LB")
t0 = p.thread(); c = t0.load("x"); t0.store("y", 1)
t1 = p.thread(); d = t1.load("y"); t1.store("x", 1)
p.observe(c, d)
cyclic = [
    g
    for g in verify(
        p.build(), "imm", stop_on_error=False, collect_executions=True
    ).execution_graphs
    if all(g.value_of(r) == 1 for r in g.reads())
]
print(format_witness(cyclic[0]))
assert not linearize(cyclic[0]).exists
