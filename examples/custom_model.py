"""Write a memory model as a .cat file and run it like a built-in.

The checker is parametric in the memory model; this example makes that
concrete by defining *broken TSO* — x86-TSO with the fence axiom
deleted — entirely in the declarative cat language, then watching the
SB+MFENCE litmus test change verdict.  No Python subclassing, no
registry edits: just text.

Run with::

    python examples/custom_model.py
"""

import tempfile

from repro.cat import CatModel
from repro.litmus import get_litmus, run_litmus
from repro.models import load_cat

# x86-TSO in four lines: program order is preserved except write-to-
# read, locked RMWs flush the buffer, and the external communication
# edges close the cycle.  The real model (src/repro/models/cat/tso.cat)
# adds a `fence` term that restores W->R order across MFENCE — here we
# deliberately leave it out.
BROKEN_TSO = """
"TSO without the fence axiom"
(* repro: name=broken-tso porf_acyclic=true *)

let ppo = ([M]; po; [M]) \\ (W * R)
let flush = ([X]; po; [M]) | ([M]; po; [X])

acyclic ppo | flush | rfe | coe | fre as tso-sans-fence
"""

model = CatModel.from_source(BROKEN_TSO)

print("SB and SB+fences under real tso vs the fenceless .cat model:\n")
for test_name in ("SB", "SB+fences"):
    test = get_litmus(test_name)
    real = run_litmus(test, "tso")
    broken = run_litmus(test, model)
    print(
        f"  {test_name:10s}  tso: {'allowed' if real.observed else 'forbidden':9s}"
        f"  broken-tso: {'allowed' if broken.observed else 'forbidden'}"
    )

print(
    "\nSame verdict on SB (no fences to matter), but SB+fences stays "
    "allowed under\nbroken-tso: without the fence term, MFENCE orders "
    "nothing.\n"
)

# The same text works from a file — this is what `hmc verify SB
# --model-file foo.cat` does, and `register_file` would make it
# resolvable by name process-wide.  Loading lints the file first, so a
# typo fails here with file:line:column, not mid-exploration.
with tempfile.NamedTemporaryFile("w", suffix=".cat", delete=False) as handle:
    handle.write(BROKEN_TSO)
    path = handle.name

loaded = load_cat(path)
verdict = run_litmus(get_litmus("SB+fences"), loaded, jobs=2)
print(
    f"loaded from {path.split('/')[-1]} and run with jobs=2: "
    f"SB+fences {'allowed' if verdict.observed else 'forbidden'} "
    f"({verdict.executions} executions)"
)
